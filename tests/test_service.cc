/**
 * @file
 * Sweep-farm service tests: request document parsing/validation and
 * round-trip, spool enqueue semantics (atomicity, duplicate ids,
 * high-water backpressure), the daemon lifecycle (process, fail into
 * failed/, orphaned-work recovery, graceful stop, warm restart via
 * store hits), byte-identity of daemon reports against direct serial
 * runs, and between-request GC that never evicts claimed entries.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "runner/runner.hh"
#include "runner/store.hh"
#include "service/service.hh"

using namespace dde;

namespace
{

namespace fs = std::filesystem;

std::string
freshDir(const std::string &name)
{
    fs::path dir = fs::path(::testing::TempDir()) / ("dde_svc_" + name);
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

/** A small but real two-job grid (one baseline, one oracle-elim). */
std::string
smallRequestText(const std::string &id)
{
    return "{\n"
           "  \"schema\": \"dde.sweepreq/1\",\n"
           "  \"id\": \"" + id + "\",\n"
           "  \"scale\": 1,\n"
           "  \"jobs\": [\n"
           "    {\"workload\": \"fsm\", \"config\": \"tiny\"},\n"
           "    {\"workload\": \"fsm\", \"config\": \"tiny\", "
           "\"oracle\": true}\n"
           "  ]\n"
           "}\n";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in) << "cannot read " << path;
    std::ostringstream text;
    text << in.rdbuf();
    return text.str();
}

service::ServiceOptions
ciOptions(const std::string &spool, const std::string &store = {})
{
    service::ServiceOptions opts;
    opts.spoolDir = spool;
    opts.storeDir = store;
    opts.threads = 2;
    opts.exitWhenIdle = true;
    return opts;
}

} // namespace

TEST(ServiceRequest, ParseAppliesDefaultsAndLabels)
{
    auto req = service::parseRequest(smallRequestText("r1"), "fb");
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.scale, 1u);
    EXPECT_FALSE(req.profile);
    ASSERT_EQ(req.jobs.size(), 2u);
    EXPECT_EQ(req.jobs[0].label, "tiny:fsm");
    EXPECT_FALSE(req.jobs[0].elim);
    EXPECT_EQ(req.jobs[0].recovery, "ueb");
    // Oracle implies elimination in the derived label.
    EXPECT_EQ(req.jobs[1].label, "tiny-elim-oracle:fsm");
    EXPECT_TRUE(req.jobs[1].oracle);
}

TEST(ServiceRequest, FallbackIdIsUsedWhenDocumentHasNone)
{
    std::string text =
        "{\"schema\": \"dde.sweepreq/1\", \"jobs\": "
        "[{\"workload\": \"fsm\"}]}";
    auto req = service::parseRequest(text, "spool-stem");
    EXPECT_EQ(req.id, "spool-stem");
    EXPECT_EQ(req.jobs[0].config, "contended");
}

TEST(ServiceRequest, RenderParsesBackIdentically)
{
    auto req = service::parseRequest(smallRequestText("rt"), "fb");
    auto back = service::parseRequest(service::renderRequest(req), "x");
    EXPECT_EQ(back.id, req.id);
    EXPECT_EQ(back.scale, req.scale);
    ASSERT_EQ(back.jobs.size(), req.jobs.size());
    for (std::size_t i = 0; i < req.jobs.size(); ++i) {
        EXPECT_EQ(back.jobs[i].label, req.jobs[i].label);
        EXPECT_EQ(back.jobs[i].workload, req.jobs[i].workload);
        EXPECT_EQ(back.jobs[i].config, req.jobs[i].config);
        EXPECT_EQ(back.jobs[i].seed, req.jobs[i].seed);
        EXPECT_EQ(back.jobs[i].oracle, req.jobs[i].oracle);
        EXPECT_EQ(back.jobs[i].recovery, req.jobs[i].recovery);
    }
}

TEST(ServiceRequest, ValidationRejectsBadDocuments)
{
    auto parse = [](const std::string &text) {
        return service::parseRequest(text, "fb");
    };
    EXPECT_THROW(parse("not json"), FatalError);
    EXPECT_THROW(parse("{\"schema\": \"other/9\", \"jobs\": []}"),
                 FatalError);
    // Empty grid.
    EXPECT_THROW(parse("{\"schema\": \"dde.sweepreq/1\", "
                       "\"jobs\": []}"),
                 FatalError);
    // Unknown workload / config preset / recovery mode.
    EXPECT_THROW(parse("{\"schema\": \"dde.sweepreq/1\", \"jobs\": "
                       "[{\"workload\": \"nope\"}]}"),
                 FatalError);
    EXPECT_THROW(parse("{\"schema\": \"dde.sweepreq/1\", \"jobs\": "
                       "[{\"workload\": \"fsm\", "
                       "\"config\": \"huge\"}]}"),
                 FatalError);
    EXPECT_THROW(parse("{\"schema\": \"dde.sweepreq/1\", \"jobs\": "
                       "[{\"workload\": \"fsm\", "
                       "\"recovery\": \"retry\"}]}"),
                 FatalError);
    // Ids must be plain filenames: no separators, no leading dot.
    EXPECT_THROW(parse("{\"schema\": \"dde.sweepreq/1\", "
                       "\"id\": \"../escape\", \"jobs\": "
                       "[{\"workload\": \"fsm\"}]}"),
                 FatalError);
    EXPECT_THROW(parse("{\"schema\": \"dde.sweepreq/1\", "
                       "\"id\": \".hidden\", \"jobs\": "
                       "[{\"workload\": \"fsm\"}]}"),
                 FatalError);
}

TEST(ServiceSpool, EnqueueSpoolsValidatedDocumentsAtomically)
{
    std::string root = freshDir("enq");
    auto res = service::enqueueRequest(root, smallRequestText("a"),
                                       "fb");
    ASSERT_TRUE(res.accepted) << res.reason;
    EXPECT_EQ(res.path, root + "/new/a.json");
    EXPECT_TRUE(fs::exists(res.path));
    // No staging debris next to the spooled document.
    std::size_t files = 0;
    for (const auto &e : fs::directory_iterator(root + "/new"))
        files += e.is_regular_file();
    EXPECT_EQ(files, 1u);

    // A malformed document is rejected at the enqueue edge.
    auto bad = service::enqueueRequest(root, "{broken", "fb");
    EXPECT_FALSE(bad.accepted);
    EXPECT_FALSE(bad.reason.empty());

    // Re-submitting a pending id is a duplicate, not an overwrite.
    auto dup = service::enqueueRequest(root, smallRequestText("a"),
                                       "fb");
    EXPECT_FALSE(dup.accepted);
    EXPECT_NE(dup.reason.find("duplicate"), std::string::npos);
}

TEST(ServiceSpool, HighWaterMarkRejectsWhenFull)
{
    std::string root = freshDir("backpressure");
    ASSERT_TRUE(service::enqueueRequest(root, smallRequestText("a"),
                                        "fb", 2)
                    .accepted);
    ASSERT_TRUE(service::enqueueRequest(root, smallRequestText("b"),
                                        "fb", 2)
                    .accepted);
    // The spool is at the high-water mark: push back on the producer.
    auto res = service::enqueueRequest(root, smallRequestText("c"),
                                       "fb", 2);
    EXPECT_FALSE(res.accepted);
    EXPECT_NE(res.reason.find("spool full"), std::string::npos);
    EXPECT_FALSE(fs::exists(root + "/new/c.json"));

    // Draining the spool reopens it.
    fs::remove(root + "/new/a.json");
    EXPECT_TRUE(service::enqueueRequest(root, smallRequestText("c"),
                                        "fb", 2)
                    .accepted);
}

TEST(Service, ProcessesARequestAndWritesAllArtifacts)
{
    std::string spool = freshDir("process");
    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("r"),
                                        "fb")
                    .accepted);

    service::SweepService svc(ciOptions(spool, freshDir("process_st")));
    EXPECT_EQ(svc.run(), 0);

    EXPECT_EQ(svc.counters().requestsDone, 1u);
    EXPECT_EQ(svc.counters().jobsCompleted, 2u);
    EXPECT_EQ(svc.counters().jobsFailed, 0u);
    // The document moved new/ -> work/ -> done/.
    EXPECT_FALSE(fs::exists(spool + "/new/r.json"));
    EXPECT_FALSE(fs::exists(spool + "/work/r.json"));
    EXPECT_TRUE(fs::exists(spool + "/done/r.json"));

    // Streamed events: accepted, one per job, done.
    std::string events = slurp(spool + "/out/r.events.jsonl");
    EXPECT_NE(events.find("\"event\": \"accepted\""),
              std::string::npos);
    EXPECT_NE(events.find("\"label\": \"tiny:fsm\""),
              std::string::npos);
    EXPECT_NE(events.find("\"label\": \"tiny-elim-oracle:fsm\""),
              std::string::npos);
    EXPECT_NE(events.find("\"event\": \"done\""), std::string::npos);

    // The report parses and carries both rows.
    std::string report = slurp(spool + "/out/r.report.json");
    EXPECT_NE(report.find("\"schema\": \"dde.sweep/2\""),
              std::string::npos);
    std::string status = slurp(spool + "/out/r.status.json");
    EXPECT_NE(status.find("\"ok\": true"), std::string::npos);
    EXPECT_NE(status.find("\"jobs\": 2"), std::string::npos);
}

TEST(Service, ReportIsByteIdenticalToADirectSerialRun)
{
    std::string spool = freshDir("identity");
    std::string text = smallRequestText("id1");
    ASSERT_TRUE(service::enqueueRequest(spool, text, "fb").accepted);

    // The daemon runs threaded with a store...
    service::SweepService svc(
        ciOptions(spool, freshDir("identity_st")));
    ASSERT_EQ(svc.run(), 0);

    // ...the reference runs serial and storeless. Same grid, same
    // document order, so the reports must match byte for byte.
    auto req = service::parseRequest(text, "fb");
    runner::SweepRunner::Options plain;
    plain.threads = 1;
    runner::SweepRunner serial(plain);
    service::queueRequest(serial, req);
    EXPECT_EQ(slurp(spool + "/out/id1.report.json"),
              serial.run().toJson());
}

TEST(Service, RestartResumesWarmWithoutDuplicateSimulation)
{
    std::string spool = freshDir("warm");
    std::string store = freshDir("warm_store");

    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("one"),
                                        "fb")
                    .accepted);
    service::SweepService first(ciOptions(spool, store));
    ASSERT_EQ(first.run(), 0);
    std::string cold_status = slurp(spool + "/out/one.status.json");
    EXPECT_NE(cold_status.find("\"misses\": 2"), std::string::npos);

    // A "restarted" daemon receives the same grid under a new id:
    // every job re-hydrates from the store, nothing re-simulates.
    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("two"),
                                        "fb")
                    .accepted);
    service::SweepService second(ciOptions(spool, store));
    ASSERT_EQ(second.run(), 0);
    std::string warm_status = slurp(spool + "/out/two.status.json");
    EXPECT_NE(warm_status.find("\"hits\": 2"), std::string::npos);
    EXPECT_NE(warm_status.find("\"misses\": 0"), std::string::npos);

    // Warm and cold reports stay byte-identical (ids are not part of
    // the report body).
    EXPECT_EQ(slurp(spool + "/out/one.report.json"),
              slurp(spool + "/out/two.report.json"));
}

TEST(Service, MalformedSpooledDocumentFailsIntoFailedDir)
{
    std::string spool = freshDir("badreq");
    service::SpoolPaths paths = service::SpoolPaths::at(spool);
    paths.ensure();
    // Bypass the validating client, as a broken producer would.
    { std::ofstream(paths.incoming + "/junk.json") << "{torn"; }

    service::SweepService svc(ciOptions(spool));
    EXPECT_EQ(svc.run(), 0);  // a bad request never kills the farm
    EXPECT_EQ(svc.counters().requestsFailed, 1u);
    EXPECT_EQ(svc.counters().requestsDone, 0u);
    EXPECT_TRUE(fs::exists(paths.failed + "/junk.json"));
    EXPECT_FALSE(slurp(paths.failed + "/junk.error.txt").empty());
}

TEST(Service, RecoversOrphanedWorkFromACrashedPredecessor)
{
    std::string spool = freshDir("recover");
    service::SpoolPaths paths = service::SpoolPaths::at(spool);
    paths.ensure();
    // A predecessor crashed mid-request: the document sits in work/.
    {
        std::ofstream(paths.work + "/orphan.json")
            << smallRequestText("orphan");
    }

    service::SweepService svc(ciOptions(spool));
    EXPECT_EQ(svc.run(), 0);
    EXPECT_EQ(svc.counters().recovered, 1u);
    EXPECT_EQ(svc.counters().requestsDone, 1u);
    EXPECT_TRUE(fs::exists(paths.done + "/orphan.json"));
    EXPECT_TRUE(fs::exists(paths.out + "/orphan.report.json"));
}

TEST(Service, StopRequestDrainsWithoutConsumingPendingWork)
{
    std::string spool = freshDir("drain");
    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("p"),
                                        "fb")
                    .accepted);

    service::SweepService svc(ciOptions(spool));
    // The SIGTERM handler path: stop before the loop ever claims.
    svc.requestStop();
    EXPECT_TRUE(svc.stopRequested());
    EXPECT_EQ(svc.run(), 0);
    EXPECT_EQ(svc.counters().requestsDone, 0u);
    // The pending request survives for the next daemon...
    EXPECT_TRUE(fs::exists(spool + "/new/p.json"));

    // ...which picks it up normally.
    service::SweepService next(ciOptions(spool));
    EXPECT_EQ(next.run(), 0);
    EXPECT_EQ(next.counters().requestsDone, 1u);
}

TEST(Service, MaxRequestsBoundsTheRun)
{
    std::string spool = freshDir("maxreq");
    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("a"),
                                        "fb")
                    .accepted);
    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("b"),
                                        "fb")
                    .accepted);

    auto opts = ciOptions(spool);
    opts.maxRequests = 1;
    service::SweepService svc(opts);
    EXPECT_EQ(svc.run(), 0);
    EXPECT_EQ(svc.counters().requestsDone, 1u);
    // Requests process oldest-name first; "b" stays pending.
    EXPECT_TRUE(fs::exists(spool + "/done/a.json"));
    EXPECT_TRUE(fs::exists(spool + "/new/b.json"));
}

TEST(Service, BetweenRequestGcRespectsClaimsAndTheByteBudget)
{
    std::string spool = freshDir("gc");
    std::string store_dir = freshDir("gc_store");

    // Pre-populate the store: one entry claimed by a live worker of
    // another process, one old idle entry.
    runner::StoreOptions so;
    so.dir = store_dir;
    runner::ResultStore rival(so);
    runner::JobResult row;
    row.label = "held";
    row.ok = true;
    row.add({"v", std::uint64_t{1}});
    rival.save("held.key", row);
    ASSERT_TRUE(rival.tryClaim("held.key"));
    row.label = "idle";
    rival.save("idle.key", row);
    fs::last_write_time(rival.entryPath("idle.key"),
                        fs::file_time_type::clock::now() -
                            std::chrono::hours(2));

    ASSERT_TRUE(service::enqueueRequest(spool, smallRequestText("g"),
                                        "fb")
                    .accepted);
    auto opts = ciOptions(spool, store_dir);
    opts.gcMaxBytes = 1;  // evict everything evictable
    service::SweepService svc(opts);
    ASSERT_EQ(svc.run(), 0);
    EXPECT_GE(svc.counters().gcPasses, 1u);

    // The claimed entry survived the tiny budget; the idle one and
    // the request's own (released) entries did not.
    runner::ResultStore probe(so);
    EXPECT_TRUE(probe.load("held.key"));
    EXPECT_FALSE(probe.load("idle.key"));
}
