/**
 * @file
 * Unit tests for the ISA layer: opcode properties, binary
 * encode/decode round trips, semantics, register naming and the
 * assembler/disassembler.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "isa/assembler.hh"
#include "isa/encoding.hh"
#include "isa/instruction.hh"
#include "isa/regnames.hh"
#include "isa/semantics.hh"

using namespace dde;
using namespace dde::isa;

TEST(Opcodes, TableIsConsistent)
{
    for (unsigned i = 0; i < kNumOpcodes; ++i) {
        auto op = static_cast<Opcode>(i);
        const OpInfo &info = opInfo(op);
        EXPECT_FALSE(info.mnemonic.empty());
        EXPECT_EQ(opcodeFromMnemonic(info.mnemonic), op)
            << "mnemonic " << info.mnemonic;
    }
    EXPECT_EQ(opcodeFromMnemonic("bogus"), Opcode::NumOpcodes);
}

TEST(Opcodes, ClassPredicates)
{
    EXPECT_TRUE(isConditionalBranch(Opcode::Beq));
    EXPECT_FALSE(isConditionalBranch(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jal));
    EXPECT_TRUE(isControl(Opcode::Jalr));
    EXPECT_TRUE(isControl(Opcode::Halt));
    EXPECT_FALSE(isControl(Opcode::Add));
}

TEST(Instruction, SourceAndDestAccounting)
{
    using namespace build;
    Instruction add = rr(Opcode::Add, 5, 6, 7);
    EXPECT_TRUE(add.writesReg());
    EXPECT_EQ(add.numSrcs(), 2u);
    EXPECT_EQ(add.srcRegs()[0], 6);
    EXPECT_EQ(add.srcRegs()[1], 7);

    Instruction addi_r0 = ri(Opcode::Addi, kRegZero, 6, 1);
    EXPECT_FALSE(addi_r0.writesReg()) << "r0 writes are discarded";

    Instruction load = ld(3, 2, 16);
    EXPECT_TRUE(load.isLoad());
    EXPECT_EQ(load.numSrcs(), 1u);

    Instruction store = st(4, 2, 8);
    EXPECT_TRUE(store.isStore());
    EXPECT_FALSE(store.writesReg());
    EXPECT_EQ(store.numSrcs(), 2u);

    Instruction link = jal(kRegRa, 10);
    EXPECT_TRUE(link.writesReg());
    EXPECT_TRUE(link.hasSideEffect());

    Instruction o = out(9);
    EXPECT_TRUE(o.hasSideEffect());
    EXPECT_FALSE(o.writesReg());
}

TEST(Encoding, RoundTripsEveryFormat)
{
    using namespace build;
    std::vector<Instruction> cases = {
        rr(Opcode::Add, 1, 2, 3),
        rr(Opcode::Mul, 31, 30, 29),
        ri(Opcode::Addi, 4, 5, -1234),
        ri(Opcode::Andi, 6, 7, 0x7fff),
        ri(Opcode::Lui, 8, 0, -32768),
        ld(9, 10, 32760),
        st(11, 12, -32768),
        br(Opcode::Beq, 13, 14, -100),
        br(Opcode::Bgeu, 15, 16, 32767),
        jal(1, -1000000),
        jalr(0, 1, 0),
        out(17),
        halt(),
        nop(),
    };
    for (const Instruction &inst : cases) {
        Instruction back = decode(encode(inst));
        EXPECT_EQ(back, inst) << disassemble(inst);
    }
}

TEST(Encoding, ImmediateOverflowPanics)
{
    using namespace build;
    EXPECT_THROW(encode(ri(Opcode::Addi, 1, 2, 40000)), PanicError);
    EXPECT_THROW(encode(jal(1, 1 << 21)), PanicError);
}

TEST(Encoding, IllegalOpcodeFieldFatals)
{
    std::uint32_t word = 0xffffffffu;  // opcode field 63: out of range
    EXPECT_THROW(decode(word), FatalError);
}

TEST(Encoding, ExhaustiveRandomRoundTrip)
{
    // Every opcode with several operand patterns.
    for (unsigned opi = 0; opi < kNumOpcodes; ++opi) {
        auto op = static_cast<Opcode>(opi);
        for (int k = 0; k < 8; ++k) {
            Instruction inst;
            inst.op = op;
            inst.rd = static_cast<RegId>((k * 7 + 1) % 32);
            inst.rs1 = static_cast<RegId>((k * 11 + 2) % 32);
            inst.rs2 = static_cast<RegId>((k * 13 + 3) % 32);
            switch (opInfo(op).format) {
              case Format::R:
                break;
              case Format::I:
              case Format::M:
              case Format::B:
                inst.imm = (k - 4) * 811;
                if (op == Opcode::St)
                    inst.rd = 0;
                if (opInfo(op).format == Format::B)
                    inst.rd = 0;
                if (op == Opcode::Lui)
                    inst.rs1 = 0;
                break;
              case Format::J:
                inst.imm = (k - 4) * 99991;
                inst.rs1 = 0;
                inst.rs2 = 0;
                break;
              case Format::X:
                inst.rd = 0;
                inst.rs2 = 0;
                inst.imm = 0;
                if (op != Opcode::Out)
                    inst.rs1 = 0;
                break;
            }
            if (opInfo(op).format == Format::I && op != Opcode::Lui) {
                inst.rs2 = 0;
            } else if (opInfo(op).format == Format::I) {
                inst.rs1 = 0;
                inst.rs2 = 0;
            }
            if (opInfo(op).format == Format::M && op == Opcode::Ld)
                inst.rs2 = 0;
            Instruction back = decode(encode(inst));
            EXPECT_EQ(back, inst) << disassemble(inst);
        }
    }
}

TEST(Semantics, AluBasics)
{
    EXPECT_EQ(evalAlu(Opcode::Add, 2, 3), 5u);
    EXPECT_EQ(evalAlu(Opcode::Sub, 2, 3), static_cast<RegVal>(-1));
    EXPECT_EQ(evalAlu(Opcode::And, 0xf0f0, 0xff00), 0xf000u);
    EXPECT_EQ(evalAlu(Opcode::Or, 0xf0f0, 0x0f0f), 0xffffu);
    EXPECT_EQ(evalAlu(Opcode::Xor, 0xff, 0x0f), 0xf0u);
    EXPECT_EQ(evalAlu(Opcode::Sll, 1, 40), 1ULL << 40);
    EXPECT_EQ(evalAlu(Opcode::Srl, ~0ULL, 60), 0xfULL);
    EXPECT_EQ(evalAlu(Opcode::Sra, static_cast<RegVal>(-16), 2),
              static_cast<RegVal>(-4));
    EXPECT_EQ(evalAlu(Opcode::Mul, 7, 6), 42u);
}

TEST(Semantics, ShiftAmountsMaskTo6Bits)
{
    EXPECT_EQ(evalAlu(Opcode::Sll, 1, 64), 1u);
    EXPECT_EQ(evalAlu(Opcode::Sll, 1, 65), 2u);
}

TEST(Semantics, SignedVsUnsignedCompare)
{
    RegVal neg1 = static_cast<RegVal>(-1);
    EXPECT_EQ(evalAlu(Opcode::Slt, neg1, 0), 1u);
    EXPECT_EQ(evalAlu(Opcode::Sltu, neg1, 0), 0u);
    EXPECT_TRUE(evalBranch(Opcode::Blt, neg1, 0));
    EXPECT_FALSE(evalBranch(Opcode::Bltu, neg1, 0));
    EXPECT_TRUE(evalBranch(Opcode::Bgeu, neg1, 0));
}

TEST(Semantics, DivisionFollowsRiscV)
{
    RegVal neg1 = static_cast<RegVal>(-1);
    EXPECT_EQ(evalAlu(Opcode::Div, 7, 0), ~0ULL);
    EXPECT_EQ(evalAlu(Opcode::Rem, 7, 0), 7u);
    EXPECT_EQ(evalAlu(Opcode::Div, static_cast<RegVal>(INT64_MIN), neg1),
              static_cast<RegVal>(INT64_MIN));
    EXPECT_EQ(evalAlu(Opcode::Rem, static_cast<RegVal>(INT64_MIN), neg1),
              0u);
    EXPECT_EQ(evalAlu(Opcode::Div, static_cast<RegVal>(-7), 2),
              static_cast<RegVal>(-3));
}

TEST(Semantics, LogicalImmediatesZeroExtend)
{
    using namespace build;
    Instruction ori = ri(Opcode::Ori, 1, 2, -1);  // 0xffff after decode
    Instruction round = decode(encode(ori));
    EXPECT_EQ(immOperand(round), 0xffffu);
    Instruction addi = ri(Opcode::Addi, 1, 2, -1);
    EXPECT_EQ(immOperand(decode(encode(addi))),
              static_cast<RegVal>(-1));
}

TEST(RegNames, AbiRoundTrip)
{
    for (unsigned r = 0; r < kNumArchRegs; ++r) {
        auto reg = static_cast<RegId>(r);
        auto parsed = parseRegName(regAbiName(reg));
        ASSERT_TRUE(parsed.has_value()) << regAbiName(reg);
        EXPECT_EQ(*parsed, reg);
        auto parsed_raw = parseRegName(regName(reg));
        ASSERT_TRUE(parsed_raw.has_value());
        EXPECT_EQ(*parsed_raw, reg);
    }
    EXPECT_FALSE(parseRegName("r32").has_value());
    EXPECT_FALSE(parseRegName("x1").has_value());
    EXPECT_FALSE(parseRegName("t10").has_value());
}

TEST(Assembler, AssemblesBranchesToLabels)
{
    auto result = assemble(R"(
        start:
            addi t0, zero, 10
        loop:
            addi t0, t0, -1
            bne  t0, zero, loop
            jal  zero, start
            halt
    )");
    ASSERT_EQ(result.insts.size(), 5u);
    EXPECT_EQ(result.labels.at("start"), 0u);
    EXPECT_EQ(result.labels.at("loop"), 1u);
    // bne at index 2 targets index 1: displacement -1.
    EXPECT_EQ(result.insts[2].op, Opcode::Bne);
    EXPECT_EQ(result.insts[2].imm, -1);
    // jal at index 3 targets index 0: displacement -3.
    EXPECT_EQ(result.insts[3].imm, -3);
}

TEST(Assembler, MemoryOperandSyntax)
{
    auto result = assemble("ld t1, 8(sp)\nst t1, -16(sp)\nld t2, (gp)");
    ASSERT_EQ(result.insts.size(), 3u);
    EXPECT_EQ(result.insts[0].op, Opcode::Ld);
    EXPECT_EQ(result.insts[0].rd, parseRegName("t1").value());
    EXPECT_EQ(result.insts[0].rs1, kRegSp);
    EXPECT_EQ(result.insts[0].imm, 8);
    EXPECT_EQ(result.insts[1].op, Opcode::St);
    EXPECT_EQ(result.insts[1].rs2, parseRegName("t1").value());
    EXPECT_EQ(result.insts[1].imm, -16);
    EXPECT_EQ(result.insts[2].imm, 0);
}

TEST(Assembler, CommentsAndBlankLines)
{
    auto result = assemble("# leading comment\n\n  add t0, t1, t2 # trailing\n");
    ASSERT_EQ(result.insts.size(), 1u);
    EXPECT_EQ(result.insts[0].op, Opcode::Add);
}

TEST(Assembler, ErrorsAreFatalWithLineInfo)
{
    EXPECT_THROW(assemble("frobnicate t0, t1"), FatalError);
    EXPECT_THROW(assemble("add t0, t1"), FatalError);
    EXPECT_THROW(assemble("beq t0, t1, nowhere"), FatalError);
    EXPECT_THROW(assemble("add t0, t1, r95"), FatalError);
    EXPECT_THROW(assemble("dup:\ndup:\nnop"), FatalError);
}

TEST(Assembler, DisassembleReassembles)
{
    auto result = assemble(R"(
        lui  t3, 4096
        ori  t3, t3, 255
        mul  t4, t3, t3
        st   t4, 0(gp)
        out  t4
        halt
    )");
    for (const Instruction &inst : result.insts) {
        auto round = assemble(disassemble(inst));
        ASSERT_EQ(round.insts.size(), 1u);
        EXPECT_EQ(round.insts[0], inst) << disassemble(inst);
    }
}
