/**
 * @file
 * Property-based tests: randomly generated (but terminating by
 * construction) programs are run through the mini compiler under
 * several configurations, the functional emulator, and the
 * out-of-order core with and without dead-instruction elimination.
 * Invariants:
 *   - compiler knobs never change program outputs,
 *   - the baseline core matches the emulator on all architectural
 *     state,
 *   - the eliminating core matches on memory + output stream,
 *   - eliminations never exceed candidates and stats stay coherent.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "core/core.hh"
#include "emu/emulator.hh"
#include "mir/builder.hh"
#include "mir/compiler.hh"
#include "sim/simulator.hh"

using namespace dde;
using namespace dde::mir;

namespace
{

/** Builds a random structured program: straight-line arithmetic,
 * if-diamonds, fixed-trip loops, and memory traffic into a small
 * scratch region. Always terminates. */
class RandomProgramBuilder
{
  public:
    explicit RandomProgramBuilder(std::uint64_t seed) : _rng(seed) {}

    Module
    build()
    {
        Module m;
        m.name = "fuzz";
        FunctionBuilder b(m, "main", 0);
        _pool.clear();
        _pool.push_back(b.li(static_cast<std::int64_t>(_rng.range(1, 100))));
        _pool.push_back(b.li(static_cast<std::int64_t>(_rng.range(1, 100))));
        _base = b.li(static_cast<std::int64_t>(prog::kDataBase));

        unsigned constructs = 3 + _rng.range(0, 5);
        for (unsigned i = 0; i < constructs; ++i)
            emitConstruct(b, 2);

        for (VReg v : _pool)
            b.output(v);
        b.halt();
        return m;
    }

  private:
    VReg pick() { return _pool[_rng.range(0, _pool.size() - 1)]; }

    void
    remember(VReg v)
    {
        _pool.push_back(v);
        if (_pool.size() > 12)
            _pool.erase(_pool.begin() + (_rng.next() % 4));
    }

    void
    emitArith(FunctionBuilder &b)
    {
        static const MOp ops[] = {MOp::Add, MOp::Sub, MOp::Xor,
                                  MOp::And, MOp::Or, MOp::Mul,
                                  MOp::Slt, MOp::Sltu};
        MOp op = ops[_rng.range(0, 7)];
        remember(b.emit2(op, pick(), pick()));
        if (_rng.chance(0.3)) {
            remember(b.emitImm(MOp::AndI, pick(),
                               static_cast<std::int64_t>(
                                   _rng.range(1, 0x7fff))));
        }
        if (_rng.chance(0.2)) {
            remember(b.emitImm(MOp::SrlI, pick(),
                               static_cast<std::int64_t>(
                                   _rng.range(1, 13))));
        }
    }

    void
    emitMemory(FunctionBuilder &b)
    {
        // Keep addresses in a 32-word scratch region.
        VReg idx = b.andi(pick(), 31);
        VReg off = b.slli(idx, 3);
        VReg addr = b.add(off, _base);
        if (_rng.chance(0.5)) {
            b.store(pick(), addr, 0);
        } else {
            remember(b.load(addr, 0));
        }
    }

    void
    emitDiamond(FunctionBuilder &b, unsigned depth)
    {
        BlockId then_b = b.newBlock();
        BlockId else_b = b.newBlock();
        BlockId join = b.newBlock();
        static const Cond conds[] = {Cond::Eq, Cond::Ne, Cond::Lt,
                                     Cond::Ge, Cond::LtU, Cond::GeU};
        b.br(conds[_rng.range(0, 5)], pick(), pick(), then_b, else_b);
        auto pool_snapshot = _pool;
        b.setBlock(then_b);
        emitLeafStatements(b, depth);
        b.jmp(join);
        // Both arms define into fresh vregs; restore the pool so the
        // else arm (and the join) never consumes a then-only value.
        _pool = pool_snapshot;
        b.setBlock(else_b);
        emitLeafStatements(b, depth);
        b.jmp(join);
        _pool = pool_snapshot;
        b.setBlock(join);
    }

    void
    emitLoop(FunctionBuilder &b, unsigned depth)
    {
        unsigned trips = 2 + _rng.range(0, 30);
        VReg i = b.li(0);
        VReg n = b.li(trips);
        BlockId head = b.newBlock();
        BlockId body = b.newBlock();
        BlockId exit = b.newBlock();
        b.jmp(head);
        b.setBlock(head);
        b.br(Cond::Lt, i, n, body, exit);
        b.setBlock(body);
        auto pool_snapshot = _pool;
        emitLeafStatements(b, depth);
        _pool = pool_snapshot;
        b.intoImm(MOp::AddI, i, i, 1);
        b.jmp(head);
        b.setBlock(exit);
        remember(i);
    }

    void
    emitLeafStatements(FunctionBuilder &b, unsigned depth)
    {
        unsigned statements = 1 + _rng.range(0, 3);
        for (unsigned i = 0; i < statements; ++i)
            emitConstruct(b, depth);
    }

    void
    emitConstruct(FunctionBuilder &b, unsigned depth)
    {
        double r = _rng.uniform();
        if (depth == 0 || r < 0.5) {
            emitArith(b);
        } else if (r < 0.7) {
            emitMemory(b);
        } else if (r < 0.88) {
            emitDiamond(b, depth - 1);
        } else {
            emitLoop(b, depth - 1);
        }
    }

    Rng _rng;
    std::vector<VReg> _pool;
    VReg _base = kNoVReg;
};

} // namespace

class RandomPrograms : public ::testing::TestWithParam<int>
{
};

TEST_P(RandomPrograms, CompilerKnobsPreserveOutputs)
{
    RandomProgramBuilder gen(1000 + GetParam());
    Module m = gen.build();
    auto reference = emu::runProgram(compile(m), 20'000'000, false);

    mir::CompileOptions variants[3];
    variants[0].hoist.enabled = false;
    variants[1].regalloc.numCallerSaved = 3;
    variants[1].regalloc.numCalleeSaved = 2;
    variants[2].hoist.window = 8;
    variants[2].hoist.maxPerBlock = 6;
    variants[2].regalloc.numCallerSaved = 4;
    for (const auto &opts : variants) {
        auto result =
            emu::runProgram(compile(m, opts), 20'000'000, false);
        EXPECT_EQ(result.output, reference.output);
        // Stack layout is legitimately configuration-dependent (spill
        // slots, callee-save areas); the program-visible scratch
        // region must match exactly.
        for (unsigned w = 0; w < 32; ++w) {
            Addr a = prog::kDataBase + 8 * w;
            EXPECT_EQ(result.memory.read(a), reference.memory.read(a));
        }
    }
}

TEST_P(RandomPrograms, BaselineCoreMatchesEmulatorExactly)
{
    RandomProgramBuilder gen(2000 + GetParam());
    auto program = compile(gen.build(), sim::referenceCompileOptions());
    auto ref = emu::runProgram(program);
    sim::RunOptions opts;
    opts.cosim = true;
    for (const auto &cfg :
         {core::CoreConfig::wide(), core::CoreConfig::contended(),
          core::CoreConfig::tiny()}) {
        auto result = sim::runOnCore(program, cfg, opts);
        EXPECT_EQ(result.output, ref.output);
        EXPECT_TRUE(result.memory == ref.memory);
        EXPECT_EQ(result.stats.committed, ref.instCount);
    }
}

TEST_P(RandomPrograms, EliminationPreservesObservableState)
{
    RandomProgramBuilder gen(3000 + GetParam());
    auto program = compile(gen.build(), sim::referenceCompileOptions());
    auto ref = emu::runProgram(program);
    sim::RunOptions opts;
    opts.cosim = true;

    core::CoreConfig ueb = core::CoreConfig::contended();
    ueb.elim.enable = true;
    ueb.elim.predictor.threshold = 1;  // maximally aggressive
    auto r1 = sim::runOnCore(program, ueb, opts);
    EXPECT_TRUE(sim::observablyEqual(r1, ref));

    core::CoreConfig squash = ueb;
    squash.elim.recovery = core::RecoveryMode::SquashProducer;
    auto r2 = sim::runOnCore(program, squash, opts);
    EXPECT_TRUE(sim::observablyEqual(r2, ref));

    core::CoreConfig tiny_ueb = core::CoreConfig::tiny();
    tiny_ueb.elim.enable = true;
    tiny_ueb.elim.uebStoreEntries = 4;  // stress evictions
    auto r3 = sim::runOnCore(program, tiny_ueb, opts);
    EXPECT_TRUE(sim::observablyEqual(r3, ref));
}

TEST_P(RandomPrograms, OracleAndSquashModesPreserveObservableState)
{
    RandomProgramBuilder gen(4000 + GetParam());
    auto program = compile(gen.build(), sim::referenceCompileOptions());
    auto ref = emu::runProgram(program);
    sim::RunOptions opts;
    opts.cosim = true;

    core::CoreConfig oracle = core::CoreConfig::contended();
    oracle.elim.enable = true;
    oracle.elim.oraclePredictor = true;
    auto r1 = sim::runOnCore(program, oracle, opts);
    EXPECT_TRUE(sim::observablyEqual(r1, ref));

    core::CoreConfig squash_tiny = core::CoreConfig::tiny();
    squash_tiny.elim.enable = true;
    squash_tiny.elim.recovery = core::RecoveryMode::SquashProducer;
    squash_tiny.elim.predictor.threshold = 1;
    auto r2 = sim::runOnCore(program, squash_tiny, opts);
    EXPECT_TRUE(sim::observablyEqual(r2, ref));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPrograms,
                         ::testing::Range(0, 20));
