/**
 * @file
 * Cycle-accounting observability layer tests: the commit-slot classes
 * must partition every slot of every cycle (sum == commitWidth ×
 * cycles) on every workload/preset/elimination combination, profiling
 * must be inert when disabled, and the per-PC dead-prediction profile
 * must reconcile with the core's aggregate counters.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "mir/compiler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dde;

namespace
{

prog::Program
compileWorkload(const std::string &name, unsigned scale = 1)
{
    workloads::Params p;
    p.scale = scale;
    return mir::compile(workloads::workloadByName(name).make(p),
                        sim::referenceCompileOptions());
}

struct Preset
{
    const char *name;
    core::CoreConfig cfg;
};

std::vector<Preset>
presets()
{
    return {{"tiny", core::CoreConfig::tiny()},
            {"contended", core::CoreConfig::contended()},
            {"wide", core::CoreConfig::wide()}};
}

core::CoreConfig
withProfile(core::CoreConfig cfg, unsigned topn = 10)
{
    cfg.profile.enable = true;
    cfg.profile.topN = topn;
    return cfg;
}

} // namespace

// The acceptance identity: on every workload × preset × elimination
// mode the ten slot classes sum to exactly commitWidth × cycles —
// nothing double-counted, nothing dropped.
TEST(CycleAccounting, SlotsPartitionEveryCycleOnAllWorkloads)
{
    for (const auto &w : workloads::extendedWorkloads()) {
        auto program = compileWorkload(w.name);
        for (const Preset &p : presets()) {
            for (int mode = 0; mode < 3; ++mode) {
                core::CoreConfig cfg = withProfile(p.cfg);
                cfg.elim.enable = mode != 0;
                if (mode == 2)
                    cfg.elim.recovery =
                        core::RecoveryMode::SquashProducer;
                auto r = sim::runOnCore(program, cfg);
                ASSERT_TRUE(r.halted);
                ASSERT_TRUE(r.stats.profile.valid);
                EXPECT_EQ(r.stats.profile.totalSlots(),
                          std::uint64_t(cfg.commitWidth) *
                              r.stats.cycles)
                    << w.name << " × " << p.name << " mode " << mode;
            }
        }
    }
}

// Useful + eliminated slots must equal the committed instruction
// count: a committed instruction occupies exactly one slot.
TEST(CycleAccounting, CommitSlotsMatchCommittedInstructions)
{
    auto program = compileWorkload("compress");
    core::CoreConfig cfg =
        withProfile(core::CoreConfig::contended());
    cfg.elim.enable = true;
    auto r = sim::runOnCore(program, cfg);
    const sim::CycleProfile &p = r.stats.profile;
    EXPECT_EQ(p.slotsUsefulCommit + p.slotsDeadEliminated,
              r.stats.committed);
    EXPECT_EQ(p.slotsDeadEliminated, r.stats.committedEliminated);
}

// The accounting layer is observability only: enabling it must not
// change a single architectural or timing counter.
TEST(CycleAccounting, ProfilingDoesNotPerturbTiming)
{
    auto program = compileWorkload("hashmix");
    core::CoreConfig base = core::CoreConfig::contended();
    base.elim.enable = true;
    auto off = sim::runOnCore(program, base);
    auto on = sim::runOnCore(program, withProfile(base));
    EXPECT_FALSE(off.stats.profile.valid);
    EXPECT_TRUE(on.stats.profile.valid);
    EXPECT_EQ(off.stats.cycles, on.stats.cycles);
    EXPECT_EQ(off.stats.committed, on.stats.committed);
    EXPECT_EQ(off.stats.committedEliminated,
              on.stats.committedEliminated);
    EXPECT_EQ(off.stats.deadMispredicts, on.stats.deadMispredicts);
    EXPECT_EQ(off.output, on.output);
}

// With topN covering every PC, the per-PC eliminations must sum to
// the aggregate counter, and the list must be sorted (eliminations
// descending, PC ascending tiebreak) for deterministic reports.
TEST(CycleAccounting, PcProfileReconcilesWithAggregates)
{
    auto program = compileWorkload("compress");
    core::CoreConfig cfg =
        withProfile(core::CoreConfig::contended(), 1u << 20);
    cfg.elim.enable = true;
    auto r = sim::runOnCore(program, cfg);
    const auto &pcs = r.stats.profile.topPcs;
    ASSERT_FALSE(pcs.empty());

    std::uint64_t eliminated = 0, predicted = 0, mispredicts = 0;
    for (const auto &pc : pcs) {
        eliminated += pc.eliminated;
        predicted += pc.predicted;
        mispredicts += pc.mispredicts;
        // coverage() may exceed 1 slightly (verdicts unresolved at
        // halt); it must still be a sane ratio.
        EXPECT_GE(pc.coverage(), 0.0);
        EXPECT_LE(pc.falseElimRate(), 1.0);
    }
    EXPECT_EQ(eliminated, r.stats.committedEliminated);
    EXPECT_EQ(predicted, r.stats.predictedDead);
    EXPECT_EQ(mispredicts, r.stats.deadMispredicts);

    for (std::size_t i = 1; i < pcs.size(); ++i) {
        EXPECT_GE(pcs[i - 1].eliminated, pcs[i].eliminated);
        if (pcs[i - 1].eliminated == pcs[i].eliminated &&
            pcs[i - 1].detectorDead == pcs[i].detectorDead) {
            EXPECT_LT(pcs[i - 1].pc, pcs[i].pc);
        }
    }
}

// topN truncates the table, keeping the heaviest eliminators.
TEST(CycleAccounting, TopNTruncatesDeterministically)
{
    auto program = compileWorkload("compress");
    core::CoreConfig cfg =
        withProfile(core::CoreConfig::contended(), 3);
    cfg.elim.enable = true;
    auto r = sim::runOnCore(program, cfg);

    core::CoreConfig full_cfg = withProfile(cfg, 1u << 20);
    auto full = sim::runOnCore(program, full_cfg);

    ASSERT_LE(r.stats.profile.topPcs.size(), 3u);
    ASSERT_GE(full.stats.profile.topPcs.size(),
              r.stats.profile.topPcs.size());
    for (std::size_t i = 0; i < r.stats.profile.topPcs.size(); ++i) {
        EXPECT_EQ(r.stats.profile.topPcs[i].pc,
                  full.stats.profile.topPcs[i].pc);
        EXPECT_EQ(r.stats.profile.topPcs[i].eliminated,
                  full.stats.profile.topPcs[i].eliminated);
    }
}

// Occupancy percentiles are monotone and bounded by the structure
// sizes they sample.
TEST(CycleAccounting, OccupancyPercentilesAreSane)
{
    auto program = compileWorkload("pointer");
    core::CoreConfig cfg = withProfile(core::CoreConfig::tiny());
    auto r = sim::runOnCore(program, cfg);
    const sim::CycleProfile &p = r.stats.profile;
    EXPECT_LE(p.robP50, p.robP90);
    EXPECT_LE(p.robP90, p.robP99);
    EXPECT_LE(p.robP99, double(cfg.robSize));
    EXPECT_LE(p.iqP50, p.iqP90);
    EXPECT_LE(p.iqP90, p.iqP99);
    EXPECT_LE(p.iqP99, double(cfg.iqSize));
    EXPECT_GE(p.robP50, 0.0);
}

// A truncated run still satisfies the slot identity for the cycles it
// did execute, and is flagged as exhausted.
TEST(CycleAccounting, TruncatedRunKeepsIdentityAndIsFlagged)
{
    auto program = compileWorkload("fsm");
    core::CoreConfig cfg = withProfile(core::CoreConfig::tiny());
    sim::RunOptions opts;
    opts.maxCycles = 1'000;
    auto r = sim::runOnCore(program, cfg, opts);
    EXPECT_TRUE(r.cyclesExhausted);
    EXPECT_FALSE(r.halted);
    EXPECT_EQ(r.stats.cycles, 1'000u);
    EXPECT_EQ(r.stats.profile.totalSlots(),
              std::uint64_t(cfg.commitWidth) * r.stats.cycles);
}
