/**
 * @file
 * Branch-prediction component tests: 2-bit counters, bimodal and
 * gshare behaviour (including history checkpointing), BTB tagging and
 * the return address stack.
 */

#include <gtest/gtest.h>

#include "predictor/branch.hh"

using namespace dde;
using namespace dde::predictor;

TEST(Counter2, SaturatesBothWays)
{
    Counter2 c;
    EXPECT_FALSE(c.taken());  // weakly not-taken reset
    c.update(true);
    EXPECT_TRUE(c.taken());
    c.update(true);
    c.update(true);
    EXPECT_EQ(c.state(), 3u);
    c.update(false);
    EXPECT_TRUE(c.taken()) << "hysteresis: one miss keeps the bias";
    c.update(false);
    c.update(false);
    c.update(false);
    EXPECT_EQ(c.state(), 0u);
    EXPECT_FALSE(c.taken());
}

TEST(Bimodal, LearnsBiasedBranch)
{
    BimodalPredictor bp(256);
    Addr pc = 0x10040;
    for (int i = 0; i < 10; ++i)
        bp.update(pc, true);
    EXPECT_TRUE(bp.predict(pc));
    for (int i = 0; i < 10; ++i)
        bp.update(pc, false);
    EXPECT_FALSE(bp.predict(pc));
}

TEST(Bimodal, SizeAccounting)
{
    EXPECT_EQ(BimodalPredictor(4096).sizeInBits(), 8192u);
}

TEST(Gshare, LearnsAlternatingPatternBimodalCannot)
{
    // Outcome alternates T,N,T,N... bimodal oscillates; gshare with
    // history separates the two contexts.
    Addr pc = 0x10100;
    GsharePredictor gs(1024, 8);
    BimodalPredictor bm(1024);
    int gs_hits = 0, bm_hits = 0;
    bool outcome = false;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (gs.predict(pc) == outcome)
            ++gs_hits;
        if (bm.predict(pc) == outcome)
            ++bm_hits;
        gs.update(pc, outcome);
        bm.update(pc, outcome);
    }
    EXPECT_GT(gs_hits, 380);
    EXPECT_LT(bm_hits, 260);
}

TEST(Gshare, HistoryCheckpointRestores)
{
    GsharePredictor gs(256, 12);
    gs.shiftHistory(true);
    gs.shiftHistory(false);
    std::uint32_t checkpoint = gs.history();
    gs.shiftHistory(true);
    gs.shiftHistory(true);
    EXPECT_NE(gs.history(), checkpoint);
    gs.setHistory(checkpoint);
    EXPECT_EQ(gs.history(), checkpoint);
}

TEST(Gshare, FullWidthHistoryIsWellDefined)
{
    // Regression: the constructor admits history_bits == 32, where
    // the old `1u << history_bits` mask computation was undefined
    // behaviour. The mask must cover all 32 bits.
    GsharePredictor gs(256, 32);
    for (int i = 0; i < 40; ++i)
        gs.shiftHistory(true);
    EXPECT_EQ(gs.history(), 0xffffffffu);
    gs.shiftHistory(false);
    EXPECT_EQ(gs.history(), 0xfffffffeu);
    gs.setHistory(0xdeadbeef);
    EXPECT_EQ(gs.history(), 0xdeadbeefu);
    // Narrower widths still truncate.
    GsharePredictor gs8(256, 8);
    gs8.setHistory(0xdeadbeef);
    EXPECT_EQ(gs8.history(), 0xefu);
    EXPECT_THROW(GsharePredictor(256, 33), PanicError);
}

TEST(Gshare, UpdateCounterAtUsesSuppliedHistory)
{
    GsharePredictor gs(256, 8);
    Addr pc = 0x10000;
    std::uint32_t hist = 0x5a;
    for (int i = 0; i < 4; ++i)
        gs.updateCounterAt(pc, hist, true);
    EXPECT_TRUE(gs.predictAt(pc, hist));
    // A different history indexes a different counter.
    EXPECT_FALSE(gs.predictAt(pc, 0x00));
}

TEST(Btb, StoresAndTagsTargets)
{
    Btb btb(64);
    EXPECT_EQ(btb.lookup(0x10000), 0u);
    btb.update(0x10000, 0x20000);
    EXPECT_EQ(btb.lookup(0x10000), 0x20000u);
    // Aliasing index with different tag must miss, not mispredict.
    Addr alias = 0x10000 + 64 * 4;
    EXPECT_EQ(btb.lookup(alias), 0u);
    btb.update(alias, 0x30000);
    EXPECT_EQ(btb.lookup(alias), 0x30000u);
    EXPECT_EQ(btb.lookup(0x10000), 0u) << "evicted by the alias";
}

TEST(Ras, PushPopNesting)
{
    ReturnAddressStack ras(8);
    EXPECT_EQ(ras.pop(), 0u) << "empty stack predicts nothing";
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    ras.push(0x400);
    EXPECT_EQ(ras.pop(), 0x400u);
    EXPECT_EQ(ras.pop(), 0x100u);
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    EXPECT_EQ(ras.size(), 4u);
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    EXPECT_EQ(ras.pop(), 0u) << "oldest entries were overwritten";
}

TEST(Frontend, SizeAccountingSumsComponents)
{
    FrontendConfig cfg;
    FrontendPredictor fe(cfg);
    EXPECT_EQ(fe.sizeInBits(),
              fe.gshare().sizeInBits() + fe.btb().sizeInBits());
    FrontendConfig tcfg;
    tcfg.direction = DirectionPredictor::Tournament;
    FrontendPredictor fet(tcfg);
    EXPECT_GT(fet.sizeInBits(), fe.sizeInBits());
}

TEST(Tournament, BeatsBothComponentsOnMixedBranches)
{
    // Branch A is strongly biased (bimodal's strength), branch B
    // alternates (gshare's strength). The tournament must track both.
    TournamentPredictor tp(1024, 8);
    BimodalPredictor bm(1024);
    GsharePredictor gs(1024, 8);
    Addr pc_a = 0x10000, pc_b = 0x10100;
    int tp_hits = 0, bm_hits = 0, gs_hits = 0;
    bool b_outcome = false;
    for (int i = 0; i < 600; ++i) {
        bool a_outcome = (i % 16) != 0;  // biased taken
        b_outcome = !b_outcome;          // alternating
        for (auto [pc, outcome] :
             {std::pair<Addr, bool>{pc_a, a_outcome},
              std::pair<Addr, bool>{pc_b, b_outcome}}) {
            if (tp.predict(pc) == outcome)
                ++tp_hits;
            if (bm.predict(pc) == outcome)
                ++bm_hits;
            if (gs.predict(pc) == outcome)
                ++gs_hits;
            tp.update(pc, outcome);
            bm.update(pc, outcome);
            gs.update(pc, outcome);
        }
    }
    EXPECT_GT(tp_hits, bm_hits);
    EXPECT_GE(tp_hits + 24, gs_hits)
        << "tournament should be within noise of the better component";
    EXPECT_GT(tp_hits, 1000) << "out of 1200 predictions";
}

TEST(Tournament, ChooserLearnsPerBranch)
{
    TournamentPredictor tp(256, 8);
    Addr pc = 0x10040;
    // Alternating pattern: only gshare can learn this; the chooser
    // must migrate toward it.
    bool outcome = false;
    int late_hits = 0;
    for (int i = 0; i < 400; ++i) {
        outcome = !outcome;
        if (i >= 200 && tp.predict(pc) == outcome)
            ++late_hits;
        tp.update(pc, outcome);
    }
    EXPECT_GT(late_hits, 190);
}
