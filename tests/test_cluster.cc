/**
 * @file
 * Two-cluster ineffectuality-steering tests: config validation,
 * steering activity and counter coherence, the chain-predictor knob,
 * the inter-cluster bypass model, and the observable-state contract
 * (steered instructions execute fully, so architectural results must
 * be unchanged on every workload).
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "core/core.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "mir/compiler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dde;
using namespace dde::core;

namespace
{

prog::Program
progFromAsm(const std::string &src)
{
    prog::Program program("t");
    for (const auto &inst : isa::assemble(src).insts)
        program.append(inst);
    return program;
}

CoreConfig
steerConfig(CoreConfig base = CoreConfig::contended())
{
    base.cluster.enable = true;
    return base;
}

prog::Program
workloadProgram(mir::Module (*make)(const workloads::Params &),
                unsigned scale = 1)
{
    workloads::Params p;
    p.scale = scale;
    return mir::compile(make(p), sim::referenceCompileOptions());
}

} // namespace

TEST(Cluster, SteeringAndEliminationAreMutuallyExclusive)
{
    auto program = progFromAsm("halt");
    CoreConfig cfg = steerConfig();
    cfg.elim.enable = true;
    EXPECT_THROW(core::Core(program, cfg), FatalError);
}

TEST(Cluster, ZeroNarrowResourcesRejected)
{
    auto program = progFromAsm("halt");
    for (auto mutate : {+[](ClusterConfig &c) { c.issueWidth = 0; },
                        +[](ClusterConfig &c) { c.numFus = 0; },
                        +[](ClusterConfig &c) { c.numMemPorts = 0; }}) {
        CoreConfig cfg = steerConfig();
        mutate(cfg.cluster);
        EXPECT_THROW(core::Core(program, cfg), FatalError);
    }
}

TEST(Cluster, AlwaysDeadInstructionGetsSteered)
{
    // The same idiom test_elimination.cc opens with: t1's first def
    // is dead every iteration. Under steering it must be routed to
    // the narrow cluster (not eliminated) and still commit.
    auto program = progFromAsm(R"(
            addi t0, zero, 400
        loop:
            addi t1, t0, 7       # always dead
            addi t1, zero, 1
            addi t0, t0, -1
            bne  t0, t1, loop
            out  t0
            halt
    )");
    auto ref = emu::runProgram(program);
    sim::RunOptions opts;
    opts.cosim = true;
    auto result = sim::runOnCore(program, steerConfig(), opts);
    EXPECT_EQ(result.output, ref.output);
    EXPECT_EQ(result.stats.committed, ref.instCount);
    EXPECT_EQ(result.stats.committedEliminated, 0u);
    EXPECT_GT(result.stats.clusterSteered, 300u);
    EXPECT_GT(result.stats.clusterNarrowIssued,
              result.stats.clusterSteered - 1);
}

TEST(Cluster, ObservableStateContractHoldsOnAllWorkloads)
{
    for (const auto &w : workloads::extendedWorkloads()) {
        workloads::Params p;
        p.scale = 1;
        auto program = mir::compile(w.make(p),
                                    sim::referenceCompileOptions());
        auto ref = emu::runProgram(program);
        sim::RunOptions opts;
        opts.cosim = true;
        auto result = sim::runOnCore(program, steerConfig(), opts);
        EXPECT_TRUE(sim::observablyEqual(result, ref)) << w.name;
        EXPECT_EQ(result.stats.committed, ref.instCount) << w.name;
    }
}

TEST(Cluster, CountersAreCoherent)
{
    auto program = workloadProgram(workloads::makeHashmix);
    auto result = sim::runOnCore(program, steerConfig());
    const sim::RunStats &s = result.stats;
    EXPECT_GT(s.clusterSteered, 0u);
    // Ineffectual-chain steers are a subset of all steers, and every
    // steered instruction issues exactly once on the narrow cluster
    // (modulo the in-flight tail at halt).
    EXPECT_LE(s.clusterSteeredIneff, s.clusterSteered);
    EXPECT_GE(s.clusterNarrowIssued, s.clusterSteered);
    EXPECT_LE(s.clusterSteered, s.committed);
    // Steering never eliminates, so the elimination machinery must
    // stay silent.
    EXPECT_EQ(s.committedEliminated, 0u);
    EXPECT_EQ(s.deadMispredicts, 0u);
}

TEST(Cluster, ChainPredictorKnobGatesIneffSteers)
{
    auto program = workloadProgram(workloads::makeHashmix);
    CoreConfig dead_only = steerConfig();
    dead_only.cluster.steerIneffectual = false;
    auto result = sim::runOnCore(program, dead_only);
    EXPECT_GT(result.stats.clusterSteered, 0u);
    EXPECT_EQ(result.stats.clusterSteeredIneff, 0u);

    auto chains = sim::runOnCore(program, steerConfig());
    EXPECT_GT(chains.stats.clusterSteeredIneff, 0u);
    // The chain predictor only ever widens the steered set.
    EXPECT_GE(chains.stats.clusterSteered,
              result.stats.clusterSteered);
}

TEST(Cluster, ZeroBypassLatencyMeansNoBypassStalls)
{
    auto program = workloadProgram(workloads::makeCompress);
    CoreConfig cfg = steerConfig();
    cfg.cluster.bypassLatency = 0;
    auto result = sim::runOnCore(program, cfg);
    EXPECT_GT(result.stats.clusterSteered, 0u);
    EXPECT_EQ(result.stats.clusterBypassStalls, 0u);

    // And the default (nonzero) bypass latency on the same workload
    // does produce cross-cluster stalls.
    auto bypass = sim::runOnCore(program, steerConfig());
    EXPECT_GT(bypass.stats.clusterBypassStalls, 0u);
}

TEST(Cluster, LatencyPenaltySlowsTheNarrowCluster)
{
    auto program = workloadProgram(workloads::makeHashmix);
    CoreConfig cheap = steerConfig();
    cheap.cluster.latencyPenalty = 0;
    CoreConfig dear = steerConfig();
    dear.cluster.latencyPenalty = 8;
    auto fast = sim::runOnCore(program, cheap);
    auto slow = sim::runOnCore(program, dear);
    EXPECT_GT(fast.stats.clusterSteered, 0u);
    EXPECT_GE(slow.stats.cycles, fast.stats.cycles);
}

TEST(Cluster, SteeringWorksOnTheWideMachine)
{
    auto program = workloadProgram(workloads::makeCompress);
    auto ref = emu::runProgram(program);
    sim::RunOptions opts;
    opts.cosim = true;
    auto result =
        sim::runOnCore(program, steerConfig(CoreConfig::wide()), opts);
    EXPECT_TRUE(sim::observablyEqual(result, ref));
    EXPECT_GT(result.stats.clusterSteered, 0u);
}
