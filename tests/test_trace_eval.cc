/**
 * @file
 * Trace-driven predictor evaluation tests: future-signature
 * construction, metric accounting, and the headline qualitative
 * claims — future control-flow information and table capacity both
 * improve the predictor, and accuracy/coverage are high on a workload
 * with control-decided deadness.
 */

#include <gtest/gtest.h>

#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "mir/compiler.hh"
#include "predictor/trace_eval.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dde;
using namespace dde::predictor;

namespace
{

prog::Program
progFromAsm(const std::string &src)
{
    prog::Program program("t");
    for (const auto &inst : isa::assemble(src).insts)
        program.append(inst);
    return program;
}

} // namespace

TEST(FutureSigs, NearestBranchInLsbUsingOracleDirections)
{
    // i0: addi, i1: beq (not taken), i2: addi, i3: bne (taken -> halt)
    auto program = progFromAsm(R"(
            addi t0, zero, 1
            beq  t0, zero, done
            addi t1, zero, 2
            bne  t0, zero, done
            addi t2, zero, 3
        done:
            halt
    )");
    auto run = emu::runProgram(program);
    TraceEvalResult metrics;
    auto sigs = computeFutureSigs(program, run.trace, FrontendConfig{},
                                  /*oracle_future=*/true, &metrics);
    ASSERT_EQ(sigs.size(), run.trace.size());
    // Record 0 (addi): future branches are beq (N) then bne (T):
    // LSB = 0, next bit = 1.
    EXPECT_EQ(sigs[0] & 0b11, 0b10u);
    // Record 2 (addi after beq): only bne remains: LSB = 1.
    EXPECT_EQ(sigs[2] & 0b1, 0b1u);
    // The final record has no future branches.
    EXPECT_EQ(sigs.back(), 0u);
    EXPECT_EQ(metrics.condBranches, 2u);
}

TEST(FutureSigs, HandBuiltTraceMatchesTheBackwardShiftRegister)
{
    auto program = progFromAsm(R"(
            addi t0, zero, 1
            beq  t0, zero, done
            addi t1, zero, 2
            bne  t0, zero, done
            addi t2, zero, 3
        done:
            halt
    )");
    // Hand-built commit order — idx0, beq (not taken), idx2, bne
    // (taken), halt — so every record's signature is checkable
    // exactly, not just its low bits.
    std::vector<emu::TraceRecord> trace = {
        {0, false, 0}, {1, false, 0}, {2, false, 0},
        {3, true, 0},  {5, false, 0},
    };
    auto sigs = computeFutureSigs(program, trace, FrontendConfig{},
                                  /*oracle_future=*/true);
    ASSERT_EQ(sigs.size(), trace.size());
    EXPECT_EQ(sigs[0], 0b10u) << "beq N in the LSB, bne T above it";
    EXPECT_EQ(sigs[1], 0b1u) << "a branch's own direction is excluded";
    EXPECT_EQ(sigs[2], 0b1u) << "only bne remains";
    EXPECT_EQ(sigs[3], 0u);
    EXPECT_EQ(sigs[4], 0u) << "no future branches after the last one";
}

TEST(FutureSigs, OlderBranchesShiftTowardTheMsb)
{
    auto program = progFromAsm(R"(
            addi t0, zero, 1
            beq  t0, zero, done
        done:
            halt
    )");
    // Four dynamic instances of the same branch, directions T,N,T,N
    // walking away from record 0: the shift register must keep the
    // nearest direction in the LSB and push older ones up.
    std::vector<emu::TraceRecord> trace = {
        {0, false, 0}, {1, true, 0},  {0, false, 0}, {1, false, 0},
        {0, false, 0}, {1, true, 0},  {0, false, 0}, {1, false, 0},
    };
    auto sigs = computeFutureSigs(program, trace, FrontendConfig{},
                                  /*oracle_future=*/true);
    std::vector<FutureSig> expect = {0b101, 0b10, 0b10, 0b1,
                                     0b1,   0,    0,    0};
    EXPECT_EQ(sigs, expect);
}

TEST(FutureSigs, PredictedSigsUseTheFrontendNotTheOracle)
{
    auto program = progFromAsm(R"(
            addi t0, zero, 1
            beq  t0, zero, done
        done:
            halt
    )");
    // Both instances of the branch are taken; a cold gshare (weakly
    // not-taken counters) predicts neither, so the predicted
    // signature stream must diverge from the oracle one.
    std::vector<emu::TraceRecord> trace = {
        {0, false, 0}, {1, true, 0}, {0, false, 0}, {1, true, 0},
    };
    TraceEvalResult metrics;
    auto oracle = computeFutureSigs(program, trace, FrontendConfig{},
                                    true, &metrics);
    auto predicted = computeFutureSigs(program, trace,
                                       FrontendConfig{}, false);
    EXPECT_EQ(oracle[0], 0b11u);
    EXPECT_EQ(predicted[0], 0u) << "cold counters say not-taken";
    EXPECT_EQ(metrics.condBranches, 2u);
    EXPECT_EQ(metrics.condBranchHits, 0u);
}

TEST(FutureSigs, PredictedDirectionsDifferFromOracleWhenPredictorIsCold)
{
    auto program = progFromAsm(R"(
            addi t0, zero, 8
        loop:
            addi t0, t0, -1
            bne  t0, zero, loop
            halt
    )");
    auto run = emu::runProgram(program);
    auto oracle = computeFutureSigs(program, run.trace,
                                    FrontendConfig{}, true);
    auto predicted = computeFutureSigs(program, run.trace,
                                       FrontendConfig{}, false);
    EXPECT_NE(oracle, predicted)
        << "a cold gshare cannot match actual outcomes exactly";
}

TEST(TraceEval, PerfectlyBiasedDeadInstructionIsCovered)
{
    // t1's value is dead every iteration (overwritten before read).
    auto program = progFromAsm(R"(
            addi t0, zero, 200
        loop:
            addi t1, t0, 7       # always dead
            addi t1, zero, 1     # kills it; read by the branch
            addi t0, t0, -1
            bne  t0, t1, loop
            out  t0
            halt
    )");
    auto run = emu::runProgram(program);
    auto result = evaluateOnTrace(program, run.trace);
    EXPECT_GT(result.labeledDead, 150u);
    EXPECT_GT(result.coverage(), 0.9);
    EXPECT_GT(result.accuracy(), 0.95);
}

TEST(TraceEval, MetricsAreInternallyConsistent)
{
    workloads::Params p;
    p.scale = 2;
    auto program = mir::compile(workloads::makeParse(p),
                                sim::referenceCompileOptions());
    auto run = emu::runProgram(program);
    auto r = evaluateOnTrace(program, run.trace);
    EXPECT_EQ(r.dynTotal, run.trace.size());
    EXPECT_EQ(r.labeledDead + r.labeledLive + r.unresolved,
              r.candidates);
    EXPECT_LE(r.truePositives, r.labeledDead);
    EXPECT_LE(r.truePositives + r.falsePositives +
                  r.predictedUnresolved,
              r.predictedDead);
    EXPECT_GT(r.branchAccuracy(), 0.5);
    EXPECT_EQ(r.predictorBits, DeadPredictorConfig{}.sizeInBits());
}

TEST(TraceEval, FutureInformationImprovesThePredictor)
{
    // The paper's key qualitative claim: the future control-flow
    // signature separates useful from useless instances of the same
    // static instruction, lifting accuracy sharply (and, where the
    // deciding branches are predictable, coverage too).
    workloads::Params p;
    p.scale = 3;
    for (const char *name : {"parse", "fsm", "callsweep"}) {
        auto program =
            mir::compile(workloads::workloadByName(name).make(p),
                         sim::referenceCompileOptions());
        auto run = emu::runProgram(program);
        TraceEvalConfig with;
        TraceEvalConfig without;
        without.predictor.futureDepth = 0;
        auto r_with = evaluateOnTrace(program, run.trace, with);
        auto r_without = evaluateOnTrace(program, run.trace, without);
        EXPECT_GT(r_with.accuracy(), r_without.accuracy() + 0.05)
            << name;
    }
    // Where dispatch is phrase-structured, coverage rises as well.
    auto program = mir::compile(workloads::makeParse(p),
                                sim::referenceCompileOptions());
    auto run = emu::runProgram(program);
    TraceEvalConfig with;
    TraceEvalConfig without;
    without.predictor.futureDepth = 0;
    EXPECT_GT(evaluateOnTrace(program, run.trace, with).coverage(),
              evaluateOnTrace(program, run.trace, without).coverage());
}

TEST(TraceEval, CapacityMattersUntilItDoesnt)
{
    workloads::Params p;
    p.scale = 2;
    auto program = mir::compile(workloads::makeFsm(p),
                                sim::referenceCompileOptions());
    auto run = emu::runProgram(program);
    TraceEvalConfig tiny, regular;
    tiny.predictor.entries = 64;
    auto r_tiny = evaluateOnTrace(program, run.trace, tiny);
    auto r_reg = evaluateOnTrace(program, run.trace, regular);
    EXPECT_GE(r_reg.coverage(), r_tiny.coverage());
}

TEST(TraceEval, LastOutcomeBaselineIsLessAccurate)
{
    workloads::Params p;
    p.scale = 3;
    auto program = mir::compile(workloads::makeFsm(p),
                                sim::referenceCompileOptions());
    auto run = emu::runProgram(program);
    TraceEvalConfig conf, last;
    last.lastOutcomeBaseline = true;
    auto r_conf = evaluateOnTrace(program, run.trace, conf);
    auto r_last = evaluateOnTrace(program, run.trace, last);
    EXPECT_GT(r_conf.accuracy(), r_last.accuracy())
        << "confidence + future CF must beat last-outcome";
}

TEST(TraceEval, OracleFutureIsAtLeastAsGoodAsPredicted)
{
    workloads::Params p;
    p.scale = 2;
    auto program = mir::compile(workloads::makePointer(p),
                                sim::referenceCompileOptions());
    auto run = emu::runProgram(program);
    TraceEvalConfig pred, orac;
    orac.oracleFuture = true;
    auto r_pred = evaluateOnTrace(program, run.trace, pred);
    auto r_orac = evaluateOnTrace(program, run.trace, orac);
    EXPECT_GE(r_orac.coverage() + 0.02, r_pred.coverage());
}
