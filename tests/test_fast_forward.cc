/**
 * @file
 * Fast-forward handoff tests.
 *
 * The fast-forward mode runs a functional emulator to a basic-block
 * boundary, checkpoints, and warm-boots the detailed core from the
 * checkpoint. Its correctness contract has two halves:
 *
 *  1. The emulator half — checkpoint/restore round-trips exactly, and
 *     a resumed execution produces the identical committed suffix a
 *     cold execution would (trace-level, not just final-state).
 *  2. The core half — a fast-forwarded detailed run reproduces the
 *     reference observables (full output stream, final memory) for
 *     any fast-forward depth, with the commit counts partitioning
 *     exactly: fastForwarded + committed == cold-run committed.
 *
 * The lockstep tests close the loop: the per-commit differential
 * oracle rides the resumed core, so every committed instruction of
 * the detailed suffix is checked against the reference emulator —
 * with elimination on, in both recovery modes.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "emu/emulator.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"
#include "verify/lockstep.hh"
#include "verify/progfuzz.hh"
#include "workloads/workloads.hh"

using namespace dde;

namespace
{

std::shared_ptr<const runner::CompiledProgram>
compressProgram(runner::ArtifactCache &artifacts)
{
    return artifacts.compiled(runner::ProgramKey("compress", 1));
}

} // namespace

TEST(EmulatorCheckpoint, RestoreRoundTripsExactly)
{
    runner::ArtifactCache artifacts;
    auto compiled = compressProgram(artifacts);
    const prog::Program &program = compiled->program;

    emu::Emulator a(program);
    a.fastForward(5000);
    emu::Checkpoint cp = a.checkpoint();

    emu::Emulator b(program);
    b.restore(cp);
    EXPECT_EQ(b.pc(), a.pc());
    EXPECT_EQ(b.instCount(), a.instCount());
    EXPECT_EQ(b.regs(), a.regs());
    EXPECT_EQ(b.output(), a.output());
    EXPECT_TRUE(b.memory() == a.memory());
    EXPECT_FALSE(b.halted());

    // Both continuations land on the same final state.
    a.run();
    b.run();
    EXPECT_EQ(a.instCount(), b.instCount());
    EXPECT_EQ(a.output(), b.output());
    EXPECT_TRUE(a.memory() == b.memory());
}

TEST(EmulatorCheckpoint, FastForwardZeroIsANoop)
{
    runner::ArtifactCache artifacts;
    auto compiled = compressProgram(artifacts);
    const prog::Program &program = compiled->program;
    emu::Emulator e(program);
    EXPECT_EQ(e.fastForward(0), 0u);
    EXPECT_EQ(e.instCount(), 0u);
    EXPECT_EQ(e.pc(), program.entryPc());
}

TEST(EmulatorCheckpoint, FastForwardNeverConsumesHalt)
{
    runner::ArtifactCache artifacts;
    auto compiled = compressProgram(artifacts);
    const prog::Program &program = compiled->program;
    auto ref = emu::runProgram(program);

    emu::Emulator e(program);
    std::uint64_t done = e.fastForward(~std::uint64_t(0));
    // Everything but the halt ran; the detailed core taking over must
    // still fetch and commit it.
    EXPECT_FALSE(e.halted());
    EXPECT_EQ(done, ref.instCount - 1);
    ASSERT_TRUE(program.containsPc(e.pc()));
    EXPECT_TRUE(program.inst(program.indexOf(e.pc())).isHalt());
}

TEST(EmulatorCheckpoint, ResumedTraceEqualsColdSuffix)
{
    // The strong form of "resume == cold run truncated at the same
    // boundary": the committed trace after restore must equal the
    // cold trace's suffix record for record, not merely end in the
    // same final state.
    runner::ArtifactCache artifacts;
    auto compiled = compressProgram(artifacts);
    const prog::Program &program = compiled->program;
    auto ref = emu::runProgram(program);

    emu::Emulator ff(program);
    std::uint64_t skipped = ff.fastForward(ref.instCount / 2);
    EXPECT_GE(skipped, ref.instCount / 2);

    emu::Emulator resumed(program);
    resumed.restore(ff.checkpoint());
    std::vector<emu::TraceRecord> suffix;
    resumed.run(100'000'000, &suffix);

    ASSERT_EQ(skipped + suffix.size(), ref.trace.size());
    for (std::size_t i = 0; i < suffix.size(); ++i) {
        const auto &got = suffix[i];
        const auto &want = ref.trace[skipped + i];
        ASSERT_EQ(got.staticIdx, want.staticIdx) << "record " << i;
        ASSERT_EQ(got.taken, want.taken) << "record " << i;
        ASSERT_EQ(got.effAddr, want.effAddr) << "record " << i;
    }
}

namespace
{

/** Cold-run committed count for (program, cfg). */
std::uint64_t
coldCommitted(const prog::Program &program,
              const core::CoreConfig &cfg)
{
    auto cold = sim::runOnCore(program, cfg);
    return cold.stats.committed;
}

/** Run with fast-forward depth `n` and check the full contract
 * against the functional reference and the cold detailed run. */
void
expectFastForwardContract(const prog::Program &program,
                          const core::CoreConfig &cfg,
                          const emu::RunResult &ref,
                          std::uint64_t cold_committed,
                          std::uint64_t n)
{
    sim::RunOptions opts;
    opts.fastForwardInsts = n;
    auto result = sim::runOnCore(program, cfg, opts);

    ASSERT_TRUE(result.halted) << "ff=" << n;
    // Observable contract: whole-program output and final memory.
    EXPECT_EQ(result.output, ref.output) << "ff=" << n;
    EXPECT_TRUE(result.memory == ref.memory) << "ff=" << n;
    // The dynamic instruction stream partitions exactly between the
    // functional prefix and the detailed suffix.
    EXPECT_EQ(result.stats.fastForwarded + result.stats.committed,
              cold_committed)
        << "ff=" << n;
    if (n == 0)
        EXPECT_EQ(result.stats.fastForwarded, 0u);
    else
        EXPECT_GE(result.stats.fastForwarded,
                  std::min(n, cold_committed - 1));
    // The core always commits at least the halt itself.
    EXPECT_GE(result.stats.committed, 1u);
}

} // namespace

TEST(FastForward, DepthSweepKeepsObservableContract)
{
    runner::ArtifactCache artifacts;
    runner::ProgramKey key("compress", 1);
    auto compiled = artifacts.compiled(key);
    const prog::Program &program = compiled->program;
    auto ref = artifacts.reference(key);

    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    std::uint64_t cold = coldCommitted(program, cfg);

    for (std::uint64_t n :
         {std::uint64_t(0), std::uint64_t(1), cold / 4,
          (cold * 9) / 10, cold * 2}) {
        expectFastForwardContract(program, cfg, *ref, cold, n);
    }
}

TEST(FastForward, ZeroDepthIsByteIdenticalToColdRun)
{
    runner::ArtifactCache artifacts;
    auto compiled = compressProgram(artifacts);
    const prog::Program &program = compiled->program;
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;

    auto cold = sim::runOnCore(program, cfg);
    sim::RunOptions opts;
    opts.fastForwardInsts = 0;
    auto ff = sim::runOnCore(program, cfg, opts);

    EXPECT_EQ(ff.stats.cycles, cold.stats.cycles);
    EXPECT_EQ(ff.stats.committed, cold.stats.committed);
    EXPECT_EQ(ff.stats.committedEliminated,
              cold.stats.committedEliminated);
    EXPECT_EQ(ff.stats.branchMispredicts,
              cold.stats.branchMispredicts);
    EXPECT_EQ(ff.stats.fastForwarded, 0u);
    EXPECT_EQ(ff.output, cold.output);
    EXPECT_TRUE(ff.memory == cold.memory);
}

TEST(FastForward, BothRecoveryModesAcrossWorkloads)
{
    runner::ArtifactCache artifacts;
    for (const char *w : {"hashmix", "sortq", "fsm"}) {
        runner::ProgramKey key(w, 1);
        auto compiled = artifacts.compiled(key);
        const prog::Program &program = compiled->program;
        auto ref = artifacts.reference(key);
        for (auto mode : {core::RecoveryMode::UebRepair,
                          core::RecoveryMode::SquashProducer}) {
            core::CoreConfig cfg = core::CoreConfig::contended();
            cfg.elim.enable = true;
            cfg.elim.recovery = mode;
            std::uint64_t cold = coldCommitted(program, cfg);
            expectFastForwardContract(program, cfg, *ref, cold,
                                      cold / 2);
        }
    }
}

TEST(FastForward, CosimRidesTheResumedCore)
{
    // RunOptions::cosim panics on any per-commit divergence; with
    // fast-forward it compares the detailed suffix against a resumed
    // reference emulator. A clean run is the assertion.
    runner::ArtifactCache artifacts;
    runner::ProgramKey key("compress", 1);
    auto compiled = artifacts.compiled(key);
    const prog::Program &program = compiled->program;
    auto ref = artifacts.reference(key);

    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    sim::RunOptions opts;
    opts.cosim = true;
    opts.fastForwardInsts = 4000;
    auto result = sim::runOnCore(program, cfg, opts);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.output, ref->output);
    EXPECT_TRUE(result.memory == ref->memory);
}

TEST(FastForward, OracleLabelsRederivedFromSuffix)
{
    // With the oracle predictor, full-run labels would be misaligned
    // against the resumed core's per-static instance cursors; the
    // runner must re-derive them from the suffix trace. Perfect
    // labels with UEB recovery still never squash.
    runner::ArtifactCache artifacts;
    runner::ProgramKey key("parse", 1);
    auto compiled = artifacts.compiled(key);
    const prog::Program &program = compiled->program;
    auto ref = artifacts.reference(key);

    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    cfg.elim.oraclePredictor = true;
    sim::RunOptions opts;
    opts.cosim = true;
    opts.fastForwardInsts = 3000;
    auto result = sim::runOnCore(program, cfg, opts);
    ASSERT_TRUE(result.halted);
    EXPECT_EQ(result.output, ref->output);
    EXPECT_TRUE(result.memory == ref->memory);
    EXPECT_EQ(result.stats.deadMispredicts, 0u);
}

TEST(FastForwardLockstep, OracleChecksDetailedSuffix)
{
    runner::ArtifactCache artifacts;
    auto compiled = compressProgram(artifacts);
    const prog::Program &program = compiled->program;

    for (auto mode : {core::RecoveryMode::UebRepair,
                      core::RecoveryMode::SquashProducer}) {
        core::CoreConfig cfg = core::CoreConfig::contended();
        cfg.elim.enable = true;
        cfg.elim.recovery = mode;
        verify::LockstepOptions opts;
        opts.fastForwardInsts = 5000;
        auto ls = verify::runLockstep(program, cfg, opts);
        EXPECT_TRUE(ls.ok) << ls.report.summary();
        EXPECT_GE(ls.fastForwarded, 5000u);
        EXPECT_GT(ls.committed, 0u);
    }
}

TEST(FastForwardLockstep, InjectedBugStillCaughtAfterHandoff)
{
    // The oracle must not lose its teeth on the resumed core: the
    // skip-verification fault the fuzz campaign uses as its
    // forced-failure dry run has to diverge under fast-forward too.
    // Any one program may happen not to mispredict in its detailed
    // suffix, so sweep seeds until one does (mirrors
    // Lockstep.CatchesInjectedBug).
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 30 && !caught; ++seed) {
        prog::Program program = verify::fuzzProgram(seed);
        auto ref = emu::runProgram(program, 5'000'000, false);
        for (auto mode : {core::RecoveryMode::UebRepair,
                          core::RecoveryMode::SquashProducer}) {
            core::CoreConfig cfg = core::CoreConfig::tiny();
            cfg.elim.enable = true;
            cfg.elim.recovery = mode;
            cfg.elim.debugSkipVerifyPc = ~Addr(0);
            verify::LockstepOptions opts;
            opts.fastForwardInsts = ref.instCount / 2;
            auto ls = verify::runLockstep(program, cfg, opts);
            if (ls.diverged) {
                caught = true;
                break;
            }
        }
    }
    EXPECT_TRUE(caught)
        << "skip-verification fault never diverged under fast-forward";
}
