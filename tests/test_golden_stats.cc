/**
 * @file
 * Golden statistics regression test.
 *
 * Runs one small workload (compress, scale 1, seed 42) through
 * runOnCore with elimination enabled on the contended machine and
 * asserts the exact counter values against checked-in expectations.
 * The simulator is deterministic (fixed seeds, portable PRNG), so any
 * divergence means a behavioural change in the core, the predictor,
 * the detector, the compiler, or the workload generators — silent
 * stat drift in core.cc now fails CI instead of quietly shifting
 * EXPERIMENTS.md.
 *
 * If a change *intends* to alter these numbers (a new optimization, a
 * policy fix), re-run and update the constants in the same commit,
 * and say so in the commit message.
 */

#include <gtest/gtest.h>

#include "core/core.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"

using namespace dde;

namespace
{

sim::SimResult
goldenRun(const std::string &workload, bool elim)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key(workload, 1);
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = elim;
    return sim::runOnCore(cache.compiled(key)->program, cfg);
}

sim::SimResult
goldenSquashRun(const std::string &workload)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key(workload, 1);
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    cfg.elim.recovery = core::RecoveryMode::SquashProducer;
    return sim::runOnCore(cache.compiled(key)->program, cfg);
}

sim::SimResult
goldenClusterRun(const std::string &workload)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key(workload, 1);
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.cluster.enable = true;
    return sim::runOnCore(cache.compiled(key)->program, cfg);
}

/** Field-by-field RunStats equality (every serialized counter). */
void
expectStatsEqual(const sim::RunStats &a, const sim::RunStats &b)
{
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.committed, b.committed);
    EXPECT_EQ(a.ipc, b.ipc);
    EXPECT_EQ(a.halted, b.halted);
    EXPECT_EQ(a.fastForwarded, b.fastForwarded);
    EXPECT_EQ(a.committedEliminated, b.committedEliminated);
    EXPECT_EQ(a.predictedDead, b.predictedDead);
    EXPECT_EQ(a.deadMispredicts, b.deadMispredicts);
    EXPECT_EQ(a.branchMispredicts, b.branchMispredicts);
    EXPECT_EQ(a.physRegAllocs, b.physRegAllocs);
    EXPECT_EQ(a.rfReads, b.rfReads);
    EXPECT_EQ(a.rfWrites, b.rfWrites);
    EXPECT_EQ(a.dcacheLoads, b.dcacheLoads);
    EXPECT_EQ(a.dcacheStores, b.dcacheStores);
    EXPECT_EQ(a.detectorDead, b.detectorDead);
    EXPECT_EQ(a.detectorLive, b.detectorLive);
    EXPECT_EQ(a.clusterSteered, b.clusterSteered);
    EXPECT_EQ(a.clusterSteeredIneff, b.clusterSteeredIneff);
    EXPECT_EQ(a.clusterSteeredWrong, b.clusterSteeredWrong);
    EXPECT_EQ(a.clusterBypassStalls, b.clusterBypassStalls);
    EXPECT_EQ(a.clusterNarrowIssued, b.clusterNarrowIssued);
}

} // namespace

TEST(GoldenStats, EliminationRunCountersAreExact)
{
    auto result = goldenRun("compress", true);
    const sim::RunStats &s = result.stats;

    EXPECT_EQ(s.committed, 17176u);
    EXPECT_EQ(s.cycles, 18963u);
    EXPECT_EQ(s.committedEliminated, 346u);
    EXPECT_EQ(s.predictedDead, 493u);
    EXPECT_EQ(s.deadMispredicts, 0u);
    EXPECT_EQ(s.branchMispredicts, 417u);
    EXPECT_EQ(s.physRegAllocs, 18289u);
    EXPECT_EQ(s.rfReads, 25565u);
    EXPECT_EQ(s.rfWrites, 14036u);
    EXPECT_EQ(s.dcacheLoads, 3204u);
    EXPECT_EQ(s.dcacheStores, 1841u);
    EXPECT_EQ(s.detectorDead, 554u);
    EXPECT_EQ(s.detectorLive, 13542u);
}

TEST(GoldenStats, BaselineRunCountersAreExact)
{
    auto result = goldenRun("compress", false);
    const sim::RunStats &s = result.stats;

    EXPECT_EQ(s.committed, 17176u);
    EXPECT_EQ(s.cycles, 18913u);
    EXPECT_EQ(s.committedEliminated, 0u);
    EXPECT_EQ(s.branchMispredicts, 415u);
}

// Second pinned workload: hashmix exercises the hash-table archetype
// (pointer-heavy, higher dead fraction than compress), so drift that
// happens to cancel out on compress still trips here.
TEST(GoldenStats, HashmixEliminationCountersAreExact)
{
    auto result = goldenRun("hashmix", true);
    const sim::RunStats &s = result.stats;

    EXPECT_TRUE(result.halted);
    EXPECT_EQ(s.committed, 19006u);
    EXPECT_EQ(s.cycles, 30805u);
    EXPECT_EQ(s.committedEliminated, 1347u);
    EXPECT_EQ(s.predictedDead, 1798u);
    EXPECT_EQ(s.deadMispredicts, 0u);
    EXPECT_EQ(s.branchMispredicts, 306u);
    EXPECT_EQ(s.physRegAllocs, 18503u);
    EXPECT_EQ(s.rfReads, 23741u);
    EXPECT_EQ(s.rfWrites, 16247u);
    EXPECT_EQ(s.dcacheLoads, 1239u);
    EXPECT_EQ(s.dcacheStores, 824u);
    EXPECT_EQ(s.detectorDead, 1404u);
    EXPECT_EQ(s.detectorLive, 14510u);
}

// SquashProducer recovery pinned per workload: the squash path walks
// completely different core machinery (producer-relative flush,
// re-fetch, RAT rollback) than UEB repair, so the UEB goldens alone
// would not catch drift in it.
TEST(GoldenStats, CompressSquashProducerCountersAreExact)
{
    auto result = goldenSquashRun("compress");
    const sim::RunStats &s = result.stats;

    EXPECT_TRUE(result.halted);
    EXPECT_EQ(s.committed, 17176u);
    EXPECT_EQ(s.cycles, 19094u);
    EXPECT_EQ(s.committedEliminated, 8u);
    EXPECT_EQ(s.predictedDead, 48u);
    EXPECT_EQ(s.deadMispredicts, 21u);
    EXPECT_EQ(s.branchMispredicts, 423u);
    EXPECT_EQ(s.physRegAllocs, 18815u);
    EXPECT_EQ(s.rfReads, 25768u);
    EXPECT_EQ(s.rfWrites, 14296u);
    EXPECT_EQ(s.dcacheLoads, 3236u);
    EXPECT_EQ(s.dcacheStores, 1841u);
    EXPECT_EQ(s.detectorDead, 324u);
    EXPECT_EQ(s.detectorLive, 13772u);
}

TEST(GoldenStats, HashmixSquashProducerCountersAreExact)
{
    auto result = goldenSquashRun("hashmix");
    const sim::RunStats &s = result.stats;

    EXPECT_TRUE(result.halted);
    EXPECT_EQ(s.committed, 19006u);
    EXPECT_EQ(s.cycles, 31519u);
    EXPECT_EQ(s.committedEliminated, 585u);
    EXPECT_EQ(s.predictedDead, 830u);
    EXPECT_EQ(s.deadMispredicts, 29u);
    EXPECT_EQ(s.branchMispredicts, 316u);
    EXPECT_EQ(s.physRegAllocs, 19797u);
    EXPECT_EQ(s.rfReads, 24738u);
    EXPECT_EQ(s.rfWrites, 17109u);
    EXPECT_EQ(s.dcacheLoads, 1270u);
    EXPECT_EQ(s.dcacheStores, 824u);
    EXPECT_EQ(s.detectorDead, 942u);
    EXPECT_EQ(s.detectorLive, 14974u);
}

// Cluster-steering grid points (ISSUE 10): the two pinned fig6
// workloads on the contended machine with the two-cluster backend
// enabled. Steering changes timing only, so `committed` must match
// the elimination goldens above while cycles and the cluster
// counters pin the steering/bypass/chain-detector behaviour.
TEST(GoldenStats, CompressClusterCountersAreExact)
{
    auto result = goldenClusterRun("compress");
    const sim::RunStats &s = result.stats;

    EXPECT_TRUE(result.halted);
    EXPECT_EQ(s.committed, 17176u);
    EXPECT_EQ(s.cycles, 19072u);
    EXPECT_EQ(s.committedEliminated, 0u);
    EXPECT_EQ(s.deadMispredicts, 0u);
    EXPECT_EQ(s.predictedDead, 162u);
    EXPECT_EQ(s.branchMispredicts, 415u);
    EXPECT_EQ(s.clusterSteered, 345u);
    EXPECT_EQ(s.clusterSteeredIneff, 211u);
    EXPECT_EQ(s.clusterSteeredWrong, 157u);
    EXPECT_EQ(s.clusterBypassStalls, 275u);
    EXPECT_EQ(s.clusterNarrowIssued, 351u);
    EXPECT_EQ(s.detectorDead, 316u);
    EXPECT_EQ(s.detectorLive, 13780u);
}

TEST(GoldenStats, HashmixClusterCountersAreExact)
{
    auto result = goldenClusterRun("hashmix");
    const sim::RunStats &s = result.stats;

    EXPECT_TRUE(result.halted);
    EXPECT_EQ(s.committed, 19006u);
    EXPECT_EQ(s.cycles, 31278u);
    EXPECT_EQ(s.committedEliminated, 0u);
    EXPECT_EQ(s.deadMispredicts, 0u);
    EXPECT_EQ(s.predictedDead, 660u);
    EXPECT_EQ(s.branchMispredicts, 304u);
    EXPECT_EQ(s.clusterSteered, 1347u);
    EXPECT_EQ(s.clusterSteeredIneff, 855u);
    EXPECT_EQ(s.clusterSteeredWrong, 78u);
    EXPECT_EQ(s.clusterBypassStalls, 486u);
    EXPECT_EQ(s.clusterNarrowIssued, 1700u);
    EXPECT_EQ(s.detectorDead, 524u);
    EXPECT_EQ(s.detectorLive, 15392u);
}

// cluster.enable=false must be byte-identical to a config that has
// no ClusterConfig at all, whatever the other cluster knobs say —
// the same invariant discipline the block cache and zoo landed
// under. Both baseline and elimination runs are pinned.
TEST(GoldenStats, ClusterDisabledIsByteIdenticalToGoldens)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key("compress", 1);
    auto program = cache.compiled(key)->program;

    for (bool elim : {false, true}) {
        core::CoreConfig plain = core::CoreConfig::contended();
        plain.elim.enable = elim;
        core::CoreConfig knobs = plain;
        knobs.cluster.enable = false;
        knobs.cluster.issueWidth = 3;
        knobs.cluster.numFus = 4;
        knobs.cluster.numMemPorts = 2;
        knobs.cluster.latencyPenalty = 7;
        knobs.cluster.bypassLatency = 9;
        knobs.cluster.steerIneffectual = false;

        auto a = sim::runOnCore(program, plain);
        auto b = sim::runOnCore(program, knobs);
        expectStatsEqual(a.stats, b.stats);
        EXPECT_EQ(a.stats.clusterSteered, 0u);
        EXPECT_EQ(a.stats.clusterNarrowIssued, 0u);
    }
}

// Steering must leave architectural results untouched: same output,
// same memory as the functional reference.
TEST(GoldenStats, ClusterRunKeepsObservableContract)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key("hashmix", 1);
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.cluster.enable = true;
    auto result = sim::runOnCore(cache.compiled(key)->program, cfg);
    auto ref = cache.reference(key);
    EXPECT_TRUE(sim::observablyEqual(result, *ref));
}

TEST(GoldenStats, HashmixEliminationKeepsObservableContract)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key("hashmix", 1);
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    auto result = sim::runOnCore(cache.compiled(key)->program, cfg);
    auto ref = cache.reference(key);
    EXPECT_TRUE(sim::observablyEqual(result, *ref));
}

TEST(GoldenStats, EliminationRunKeepsObservableContract)
{
    runner::ArtifactCache cache;
    runner::ProgramKey key("compress", 1);
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    auto result = sim::runOnCore(cache.compiled(key)->program, cfg);
    auto ref = cache.reference(key);
    EXPECT_TRUE(sim::observablyEqual(result, *ref));
}

namespace
{

/** The golden grid as a sweep: both pinned workloads in both
 * recovery modes on the contended machine. */
void
buildGoldenSweep(runner::SweepRunner &sweep)
{
    for (const char *workload : {"compress", "hashmix"}) {
        runner::ProgramKey key(workload, 1);
        for (auto mode : {core::RecoveryMode::UebRepair,
                          core::RecoveryMode::SquashProducer}) {
            core::CoreConfig cfg = core::CoreConfig::contended();
            cfg.elim.enable = true;
            cfg.elim.recovery = mode;
            std::string label = std::string(workload) +
                (mode == core::RecoveryMode::UebRepair ? "-ueb"
                                                       : "-squash");
            sweep.addCoreRun(label, key, cfg);
        }
    }
}

} // namespace

// The parallel sweep runner must be a pure scheduling change: running
// the golden grid on one thread and on four must serialize to the
// same bytes, JSON and CSV alike.
TEST(GoldenStats, ParallelSweepMatchesSerialByteForByte)
{
    runner::SweepRunner::Options serial_opts;
    serial_opts.threads = 1;
    runner::SweepRunner serial(serial_opts);
    buildGoldenSweep(serial);
    auto a = serial.run();

    runner::SweepRunner::Options parallel_opts;
    parallel_opts.threads = 4;
    runner::SweepRunner parallel(parallel_opts);
    buildGoldenSweep(parallel);
    auto b = parallel.run();

    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    EXPECT_EQ(a.toJson(), b.toJson());
    EXPECT_EQ(a.toCsv(), b.toCsv());
}
