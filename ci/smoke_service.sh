#!/usr/bin/env bash
# Sweep-service smoke: daemon report byte-identity against a direct
# serial run, warm-restart store re-hydration, graceful SIGTERM drain,
# and the claim-sparing GC. Extracted from .github/workflows/ci.yml so
# it can run locally:
#   ci/smoke_service.sh [BUILD_DIR] [WORK_DIR]
# The spool lands in WORK_DIR/spool (default: the current directory,
# which is what the CI upload step expects).
set -euo pipefail

BUILD_DIR=$(cd "${1:-build}" && pwd)
DDESWEEPD="$BUILD_DIR/bench/ddesweepd"
cd "${2:-.}"

echo "== Daemon report is byte-identical to a direct serial run =="
# The whole service contract in one gate: a request enqueued through
# the spool, processed by the threaded store-backed daemon, must
# produce exactly the bytes a serial storeless in-process run
# produces.
cat > req.json <<'EOF'
{
  "schema": "dde.sweepreq/1",
  "id": "ci-fig6",
  "scale": 1,
  "jobs": [
    {"workload": "fsm", "config": "contended"},
    {"workload": "fsm", "config": "contended",
     "oracle": true},
    {"workload": "hashmix", "config": "contended"},
    {"workload": "hashmix", "config": "contended",
     "oracle": true}
  ]
}
EOF
"$DDESWEEPD" --enqueue req.json --spool spool
"$DDESWEEPD" --spool spool --store-dir svcstore \
    --exit-when-idle --threads 4
test -s spool/out/ci-fig6.report.json
test -s spool/done/ci-fig6.json
grep -q '"event": "done"' spool/out/ci-fig6.events.jsonl
"$DDESWEEPD" --direct req.json --no-store \
    --threads 1 --report direct.json
cmp spool/out/ci-fig6.report.json direct.json

echo "== Warm daemon restart re-hydrates from the store =="
# Same grid under a new id: every job must be a store hit.
sed 's/ci-fig6/ci-fig6-warm/' req.json > req-warm.json
"$DDESWEEPD" --enqueue req-warm.json --spool spool
"$DDESWEEPD" --spool spool --store-dir svcstore \
    --exit-when-idle --threads 4
cmp spool/out/ci-fig6.report.json \
    spool/out/ci-fig6-warm.report.json
grep -q '"misses": 0' spool/out/ci-fig6-warm.status.json

echo "== SIGTERM drains the daemon gracefully =="
sed 's/ci-fig6/ci-sigterm/' req.json > req-sig.json
"$DDESWEEPD" --spool spool --store-dir svcstore --poll-ms 50 &
DAEMON=$!
"$DDESWEEPD" --enqueue req-sig.json --spool spool
for i in $(seq 1 100); do
    test -s spool/out/ci-sigterm.report.json && break
    sleep 0.2
done
test -s spool/out/ci-sigterm.report.json
kill -TERM "$DAEMON"
wait "$DAEMON"
cmp spool/out/ci-sigterm.report.json direct.json

echo "== Tiny-budget GC shrinks the store but spares claims =="
# A fresh lock marks its entry in-flight; even a 1-byte budget must
# not evict it, while everything unclaimed goes.
BEFORE=$(find svcstore -name '*.json' | wc -l)
test "$BEFORE" -ge 4
CLAIMED=$(find svcstore -name '*.json' | head -1)
touch "$CLAIMED.lock"
"$DDESWEEPD" --gc-only --store-dir svcstore --gc-max-bytes 1
AFTER=$(find svcstore -name '*.json' | wc -l)
echo "entries: $BEFORE before, $AFTER after"
test -s "$CLAIMED"
test "$AFTER" -eq 1

echo "service smoke OK"
