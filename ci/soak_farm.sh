#!/usr/bin/env bash
# Multi-daemon farm soak: three ddesweepd daemons draining one shared
# spool of many small requests, backed by one shared store. Gates the
# farm's exactly-once contract end to end:
#   - every request lands in done/ (none lost, none failed),
#   - every report is byte-identical to a --direct serial run of the
#     same request (so concurrent claims, store leases and GC never
#     leak into results).
# Usage: ci/soak_farm.sh [BUILD_DIR] [WORK_DIR]
# Knobs: SOAK_REQUESTS (default 200), SOAK_DAEMONS (default 3).
set -euo pipefail

BUILD_DIR=$(cd "${1:-build}" && pwd)
DDESWEEPD="$BUILD_DIR/bench/ddesweepd"
cd "${2:-.}"

N=${SOAK_REQUESTS:-200}
DAEMONS=${SOAK_DAEMONS:-3}

# Four small request templates (no "id" field: each enqueue stamps a
# unique one via --id). The store dedupes repeat simulations, so the
# soak exercises claim/lease traffic, not raw simulation throughput.
make_template() {
    local path=$1 workload=$2 oracle=$3
    cat > "$path" <<EOF
{
  "schema": "dde.sweepreq/1",
  "scale": 1,
  "jobs": [
    {"workload": "$workload", "config": "contended",
     "oracle": $oracle}
  ]
}
EOF
}
make_template req-t0.json fsm false
make_template req-t1.json fsm true
make_template req-t2.json hashmix false
make_template req-t3.json hashmix true

echo "== Direct serial references, one per template =="
for t in 0 1 2 3; do
    "$DDESWEEPD" --direct "req-t$t.json" --no-store --threads 1 \
        --report "direct-t$t.json"
done

echo "== Enqueue $N requests =="
for i in $(seq 0 $((N - 1))); do
    "$DDESWEEPD" --enqueue "req-t$((i % 4)).json" --spool spool \
        --id "soak-$(printf '%04d' "$i")" > /dev/null
done
test "$(ls spool/new | wc -l)" -eq "$N"

echo "== Drain with $DAEMONS concurrent daemons =="
PIDS=()
for d in $(seq 1 "$DAEMONS"); do
    "$DDESWEEPD" --spool spool --store-dir soakstore \
        --exit-when-idle --threads 2 --poll-ms 20 \
        > "daemon-$d.log" 2>&1 &
    PIDS+=($!)
done
for pid in "${PIDS[@]}"; do
    wait "$pid"
done

echo "== Exactly-once: every request done, none failed or stuck =="
test "$(ls spool/new 2>/dev/null | wc -l)" -eq 0
test "$(ls spool/work 2>/dev/null | wc -l)" -eq 0
test "$(ls spool/failed 2>/dev/null | wc -l)" -eq 0
DONE=$(ls spool/done | wc -l)
REPORTS=$(ls spool/out/*.report.json | wc -l)
echo "done: $DONE / $N, reports: $REPORTS"
test "$DONE" -eq "$N"
test "$REPORTS" -eq "$N"

echo "== Every farm report matches its direct serial run =="
for i in $(seq 0 $((N - 1))); do
    id="soak-$(printf '%04d' "$i")"
    cmp "spool/out/$id.report.json" "direct-t$((i % 4)).json"
done

echo "farm soak OK ($N requests, $DAEMONS daemons)"
