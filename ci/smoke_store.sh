#!/usr/bin/env bash
# Sweep-store smoke: warm-cache byte-identity, hit-ratio gate, and a
# two-process sharded run merged back into the serial report.
# Extracted from .github/workflows/ci.yml so it can run locally:
#   ci/smoke_store.sh [BUILD_DIR] [WORK_DIR]
# Artifacts (*.json) land in WORK_DIR (default: the current
# directory, which is what the CI upload steps expect).
set -euo pipefail

BUILD_DIR=$(cd "${1:-build}" && pwd)
FIG6="$BUILD_DIR/bench/fig6_speedup"
cd "${2:-.}"

echo "== Cold run, then warm rerun from the store =="
# The warm report must be byte-identical to the cold one (the store
# never enters the main report) and nearly every lookup must hit — a
# stale flood here means a fingerprint or entry format regressed.
"$FIG6" --scale 1 --store-dir store \
    --json cold.json --store-stats cold-stats.json
"$FIG6" --scale 1 --store-dir store \
    --json warm.json --store-stats warm-stats.json
cmp cold.json warm.json

echo "== Gate the warm hit ratio =="
python3 - <<'EOF'
import json
cold = json.load(open("cold-stats.json"))
warm = json.load(open("warm-stats.json"))
print(f"cold: {cold['misses']} misses, "
      f"{cold['writes']} writes; "
      f"warm: {warm['hits']}/{warm['lookups']} hits")
assert cold["writes"] == cold["jobs"], \
    "cold run failed to persist every job"
assert warm["lookups"] > 0 and \
    warm["hits"] >= 0.95 * warm["lookups"], \
    "warm rerun missed the store"
assert warm["writes"] == 0, "warm rerun re-simulated jobs"
EOF

echo "== Two-process sharded run assembles the serial report =="
# Each shard executes its half of the grid into a fresh store; --merge
# rebuilds the full report purely from store entries and must
# reproduce the serial report byte for byte.
"$FIG6" --scale 1 --store-dir store2 \
    --shards 2 --shard-index 0 --store-stats shard0-stats.json &
PID0=$!
"$FIG6" --scale 1 --store-dir store2 \
    --shards 2 --shard-index 1 --store-stats shard1-stats.json &
PID1=$!
wait $PID0 && wait $PID1
"$FIG6" --scale 1 --store-dir store2 \
    --merge --json merged.json --store-stats merge-stats.json
cmp cold.json merged.json

echo "store smoke OK"
