/**
 * @file
 * Quickstart: the whole library in ~60 lines.
 *
 * Write a tiny program in the textual assembly, run it through the
 * functional emulator, find its dead instructions with the oracle,
 * and then run it on the out-of-order core with dead-instruction
 * elimination enabled.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "core/core.hh"
#include "deadness/analysis.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "sim/simulator.hh"

using namespace dde;

int
main()
{
    // 1. A tiny program. The first write to t1 each iteration is dead
    //    (overwritten before anything reads it) — the kind of
    //    instruction the paper's predictor learns to skip.
    auto asm_result = isa::assemble(R"(
            addi t0, zero, 1000
        loop:
            addi t1, t0, 7       # dynamically dead
            addi t1, zero, 1
            addi t0, t0, -1
            bne  t0, t1, loop
            out  t0
            halt
    )");
    prog::Program program("quickstart");
    for (const auto &inst : asm_result.insts)
        program.append(inst);

    // 2. Functional execution + trace.
    auto run = emu::runProgram(program);
    std::printf("emulator: %llu instructions, output[0] = %llu\n",
                (unsigned long long)run.instCount,
                (unsigned long long)run.output.at(0));

    // 3. Oracle dead-instruction analysis.
    auto analysis = deadness::analyze(program, run.trace);
    std::printf("oracle:   %.1f%% of dynamic instructions are dead "
                "(%llu of %llu)\n",
                100.0 * analysis.deadFraction(),
                (unsigned long long)analysis.dynDead,
                (unsigned long long)analysis.dynTotal);

    // 4. Cycle-level simulation, baseline vs elimination.
    auto baseline = sim::runOnCore(program, core::CoreConfig::wide());
    core::CoreConfig cfg = core::CoreConfig::wide();
    cfg.elim.enable = true;
    auto elim = sim::runOnCore(program, cfg);

    std::printf("core:     baseline IPC %.3f | elimination IPC %.3f, "
                "%llu instructions eliminated (%.1f%%)\n",
                baseline.stats.ipc, elim.stats.ipc,
                (unsigned long long)elim.stats.committedEliminated,
                100.0 * elim.stats.committedEliminated /
                    elim.stats.committed);
    std::printf("outputs identical: %s\n",
                elim.output == run.output ? "yes" : "NO (bug!)");
    return 0;
}
