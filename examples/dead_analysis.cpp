/**
 * @file
 * Dead-instruction characterization of one benchmark, in the style of
 * the paper's Section 2: dead fraction, breakdown, the top offending
 * static instructions (disassembled, with their compiler origin), and
 * the locality curve.
 *
 *   ./dead_analysis [workload] [scale]
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "deadness/analysis.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "mir/compiler.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dde;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "parse";
    unsigned scale = argc > 2 ? std::atoi(argv[2]) : 4;

    workloads::Params params;
    params.scale = scale;
    auto program =
        mir::compile(workloads::workloadByName(name).make(params),
                     sim::referenceCompileOptions());
    auto run = emu::runProgram(program);
    auto an = deadness::analyze(program, run.trace);

    std::printf("workload %s (scale %u): %zu static, %llu dynamic "
                "instructions\n\n",
                name.c_str(), scale, program.numInsts(),
                (unsigned long long)an.dynTotal);
    std::printf("dead: %.2f%% of dynamic instructions\n",
                100.0 * an.deadFraction());
    std::printf("  first-level (overwritten unread): %llu\n",
                (unsigned long long)an.firstLevelDead);
    std::printf("  transitively dead:                %llu\n",
                (unsigned long long)an.transitiveDead);
    std::printf("  dead stores:                      %llu\n\n",
                (unsigned long long)an.deadStores);

    auto cls = an.classifyStatics();
    std::printf("static instructions: %llu always dead, %llu partially "
                "dead, %llu never dead\n",
                (unsigned long long)cls.alwaysDead,
                (unsigned long long)cls.partiallyDead,
                (unsigned long long)cls.neverDead);
    if (an.dynDead) {
        std::printf("dead instances from partially-dead statics: "
                    "%.1f%%\n\n",
                    100.0 * cls.dynFromPartial / an.dynDead);
    }

    // Top offenders.
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < an.perStatic.size(); ++i) {
        if (an.perStatic[i].deads > 0)
            order.push_back(i);
    }
    std::sort(order.begin(), order.end(), [&](auto a, auto b) {
        return an.perStatic[a].deads > an.perStatic[b].deads;
    });
    std::printf("top dead-producing static instructions:\n");
    std::printf("%-10s %-28s %-13s %10s %10s %7s\n", "pc",
                "instruction", "origin", "execs", "dead", "dead%");
    for (std::size_t k = 0; k < order.size() && k < 10; ++k) {
        std::size_t idx = order[k];
        const auto &sc = an.perStatic[idx];
        std::printf("%#-10llx %-28s %-13s %10llu %10llu %6.1f%%\n",
                    (unsigned long long)prog::Program::pcOf(idx),
                    isa::disassemble(program.inst(idx)).c_str(),
                    prog::originName(program.origin(idx)),
                    (unsigned long long)sc.execs,
                    (unsigned long long)sc.deads,
                    100.0 * sc.deads / sc.execs);
    }

    auto curve = an.localityCurve(32);
    std::printf("\nlocality: top-1 %.1f%%, top-4 %.1f%%, top-16 %.1f%% "
                "of all dead instances\n",
                curve.empty() ? 0 : 100.0 * curve[0],
                curve.size() < 4 ? 100.0 : 100.0 * curve[3],
                curve.size() < 16 ? 100.0 : 100.0 * curve[15]);
    return 0;
}
