/**
 * @file
 * Authoring a workload with the MIR builder API and measuring what
 * dead-instruction elimination does for it on a contended machine.
 *
 * The program is a small histogram kernel with a speculative hot-path
 * computation — the kind of code a compiler produces when it hoists
 * work above a data-dependent branch.
 *
 *   ./custom_workload [iterations]
 */

#include <cstdio>
#include <cstdlib>

#include "core/core.hh"
#include "emu/emulator.hh"
#include "mir/builder.hh"
#include "mir/compiler.hh"
#include "sim/simulator.hh"

using namespace dde;
using namespace dde::mir;

namespace
{

Module
buildHistogram(unsigned iterations)
{
    Module m;
    m.name = "histogram";

    // bump(bucket): increment a histogram slot; returns the new count.
    {
        FunctionBuilder f(m, "bump", 1);
        VReg base = f.li(static_cast<std::int64_t>(prog::kDataBase));
        VReg idx = f.andi(f.param(0), 63);
        VReg addr = f.add(f.slli(idx, 3), base);
        VReg old_count = f.load(addr, 0);
        VReg count = f.addi(old_count, 1);
        f.store(count, addr, 0);
        f.ret(count);
    }

    FunctionBuilder b(m, "main", 0);
    VReg n = b.li(iterations);
    VReg i = b.li(0);
    VReg state = b.li(0x12345);
    VReg spikes = b.li(0);

    BlockId head = b.newBlock();
    BlockId body = b.newBlock();
    BlockId spike = b.newBlock();
    BlockId cont = b.newBlock();
    BlockId done = b.newBlock();

    b.jmp(head);
    b.setBlock(head);
    b.br(Cond::Lt, i, n, body, done);

    b.setBlock(body);
    // xorshift sample
    b.into2(MOp::Xor, state, state, b.slli(state, 13));
    b.into2(MOp::Xor, state, state, b.srli(state, 7));
    b.into2(MOp::Xor, state, state, b.slli(state, 17));
    VReg sample = b.andi(state, 0xff);
    VReg count = b.call("bump", {sample});
    VReg threshold = b.li(12);
    b.br(Cond::Lt, threshold, count, spike, cont);

    b.setBlock(spike);
    // Hot-path bookkeeping: hoistable, dead when the branch goes the
    // other way.
    VReg weighted = b.mul(count, sample);
    VReg tag = b.addi(weighted, 1);
    b.into2(MOp::Add, spikes, spikes, tag);
    b.jmp(cont);

    b.setBlock(cont);
    b.intoImm(MOp::AddI, i, i, 1);
    b.jmp(head);

    b.setBlock(done);
    b.output(spikes);
    b.output(state);
    b.halt();
    return m;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned iterations = argc > 1 ? std::atoi(argv[1]) : 20000;

    mir::CompileStats cstats;
    auto program = mir::compile(buildHistogram(iterations),
                                sim::referenceCompileOptions(), &cstats);
    std::printf("compiled histogram: %zu instructions, %u hoisted "
                "speculatively, %u spill ops\n",
                program.numInsts(), cstats.hoisted,
                cstats.lower.spillLoads + cstats.lower.spillStores);

    auto ref = emu::runProgram(program);
    std::printf("emulator: %llu instructions, spikes=%llu\n",
                (unsigned long long)ref.instCount,
                (unsigned long long)ref.output.at(0));

    auto base = sim::runOnCore(program, core::CoreConfig::contended());
    core::CoreConfig cfg = core::CoreConfig::contended();
    cfg.elim.enable = true;
    auto elim = sim::runOnCore(program, cfg);

    std::printf("\n%-24s %12s %12s\n", "", "baseline", "eliminated");
    std::printf("%-24s %12.3f %12.3f\n", "IPC", base.stats.ipc,
                elim.stats.ipc);
    std::printf("%-24s %12llu %12llu\n", "phys reg allocations",
                (unsigned long long)base.stats.physRegAllocs,
                (unsigned long long)elim.stats.physRegAllocs);
    std::printf("%-24s %12llu %12llu\n", "RF reads",
                (unsigned long long)base.stats.rfReads,
                (unsigned long long)elim.stats.rfReads);
    std::printf("%-24s %12llu %12llu\n", "RF writes",
                (unsigned long long)base.stats.rfWrites,
                (unsigned long long)elim.stats.rfWrites);
    std::printf("%-24s %12s %12llu\n", "eliminated", "-",
                (unsigned long long)elim.stats.committedEliminated);
    std::printf("\nspeedup: %+.2f%%; outputs identical: %s\n",
                100.0 * (elim.stats.ipc / base.stats.ipc - 1.0),
                sim::observablyEqual(elim, ref) ? "yes" : "NO (bug!)");
    return 0;
}
