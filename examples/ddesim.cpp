/**
 * @file
 * ddesim — the command-line simulator front end.
 *
 * Runs a built-in workload or an assembly file on the emulator or the
 * out-of-order core, with the dead-instruction machinery switchable
 * from the command line, and dumps the full statistics report. The
 * configured run and the --compare baseline execute as parallel
 * SweepRunner jobs, and the aggregated report can be exported as JSON
 * for regression diffing.
 *
 *   ddesim --workload parse --scale 4 --config contended --elim
 *   ddesim --asm prog.s --stats
 *   ddesim --workload fsm --elim --oracle --compare --json out.json
 *   ddesim --list
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "core/core.hh"
#include "deadness/analysis.hh"
#include "emu/emulator.hh"
#include "isa/assembler.hh"
#include "mir/compiler.hh"
#include "runner/runner.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dde;

namespace
{

struct Options
{
    std::string workload;
    std::string asmFile;
    unsigned scale = 4;
    std::uint64_t seed = 42;
    std::string config = "wide";  // wide | contended | tiny
    bool elim = false;
    bool oracle = false;
    bool squashRecovery = false;
    bool compare = false;  // also run baseline and print speedup
    bool deadness = false; // oracle characterization
    bool stats = false;    // full stat dump
    bool cosim = false;
    std::uint64_t fastForward = 0;  // functional warm-up depth
    bool profile = false;  // commit-slot accounting + per-PC profile
    unsigned topn = 10;    // per-PC entries in the profile report
    unsigned threads = 0;  // sweep workers; 0 = auto
    std::string jsonPath;  // sweep report export
};

void
usage()
{
    std::puts(
        "ddesim — dead-instruction elimination simulator\n"
        "\n"
        "input (one of):\n"
        "  --workload NAME     built-in workload (see --list)\n"
        "  --asm FILE          assembly file (see isa/assembler.hh)\n"
        "  --list              list built-in workloads and exit\n"
        "\n"
        "options:\n"
        "  --scale N           workload size multiplier (default 4)\n"
        "  --seed N            workload seed (default 42)\n"
        "  --config NAME       wide | contended | tiny (default wide)\n"
        "  --elim              enable dead-instruction elimination\n"
        "  --oracle            idealized per-instance dead predictor\n"
        "  --squash-recovery   use squash-from-producer recovery\n"
        "  --compare           also run the baseline, report speedup\n"
        "  --deadness          print the oracle dead characterization\n"
        "  --stats             dump the full core statistics report\n"
        "  --cosim             lockstep-check every commit vs emulator\n"
        "  --fast-forward N    execute >= N instructions functionally\n"
        "                      (to a block boundary), then warm-boot\n"
        "                      the detailed core from the checkpoint\n"
        "  --profile           commit-slot cycle accounting and the\n"
        "                      top-N dead-prediction PC table\n"
        "  --topn N            PCs in the profile table (default 10)\n"
        "  --threads N         parallel run workers (default: auto)\n"
        "  --json PATH         write the run statistics as JSON");
}

bool
parseArgs(int argc, char **argv, Options &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc)
                fatal("missing value for ", arg);
            return argv[++i];
        };
        if (arg == "--workload") {
            opt.workload = next();
        } else if (arg == "--asm") {
            opt.asmFile = next();
        } else if (arg == "--scale") {
            opt.scale = std::atoi(next());
        } else if (arg == "--seed") {
            opt.seed = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--config") {
            opt.config = next();
        } else if (arg == "--elim") {
            opt.elim = true;
        } else if (arg == "--oracle") {
            opt.oracle = true;
        } else if (arg == "--squash-recovery") {
            opt.squashRecovery = true;
        } else if (arg == "--compare") {
            opt.compare = true;
        } else if (arg == "--deadness") {
            opt.deadness = true;
        } else if (arg == "--stats") {
            opt.stats = true;
        } else if (arg == "--fast-forward") {
            opt.fastForward = std::strtoull(next(), nullptr, 10);
        } else if (arg == "--cosim") {
            opt.cosim = true;
        } else if (arg == "--profile") {
            opt.profile = true;
        } else if (arg == "--topn") {
            opt.topn = std::atoi(next());
        } else if (arg == "--threads") {
            opt.threads = std::atoi(next());
        } else if (arg == "--json") {
            opt.jsonPath = next();
        } else if (arg == "--list") {
            for (const auto &w : workloads::extendedWorkloads())
                std::printf("%s\n", w.name.c_str());
            return false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return false;
        } else {
            fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    if (opt.workload.empty() && opt.asmFile.empty()) {
        usage();
        return false;
    }
    return true;
}

prog::Program
loadProgram(const Options &opt, runner::ArtifactCache &cache)
{
    if (!opt.asmFile.empty()) {
        std::ifstream in(opt.asmFile);
        fatal_if(!in, "cannot open '", opt.asmFile, "'");
        std::ostringstream text;
        text << in.rdbuf();
        prog::Program program(opt.asmFile);
        for (const auto &inst : isa::assemble(text.str()).insts)
            program.append(inst);
        return program;
    }
    runner::ProgramKey key(opt.workload, opt.scale, opt.seed);
    return cache.compiled(key)->program;
}

core::CoreConfig
makeConfig(const Options &opt)
{
    core::CoreConfig cfg;
    if (opt.config == "wide")
        cfg = core::CoreConfig::wide();
    else if (opt.config == "contended")
        cfg = core::CoreConfig::contended();
    else if (opt.config == "tiny")
        cfg = core::CoreConfig::tiny();
    else
        fatal("unknown config '", opt.config, "'");
    cfg.elim.enable = opt.elim;
    cfg.elim.oraclePredictor = opt.oracle;
    if (opt.squashRecovery)
        cfg.elim.recovery = core::RecoveryMode::SquashProducer;
    cfg.profile.enable = opt.profile;
    cfg.profile.topN = opt.topn;
    return cfg;
}

/** Render the --profile cycle-accounting breakdown and PC table. */
void
printProfile(const sim::CycleProfile &p, Cycle cycles)
{
    const double total = double(p.totalSlots());
    auto line = [&](const char *name, std::uint64_t slots) {
        if (slots)
            std::printf("  %-18s %12llu  %6.2f%%\n", name,
                        (unsigned long long)slots,
                        100.0 * double(slots) / total);
    };
    std::printf("\ncycle accounting (%u slots x %llu cycles = %llu):\n",
                p.commitWidth, (unsigned long long)cycles,
                (unsigned long long)p.totalSlots());
    line("usefulCommit", p.slotsUsefulCommit);
    line("deadEliminated", p.slotsDeadEliminated);
    line("frontEndStarved", p.slotsFrontEndStarved);
    line("mispredictSquash", p.slotsMispredictSquash);
    line("iqFull", p.slotsIqFull);
    line("lsqFull", p.slotsLsqFull);
    line("physRegStall", p.slotsPhysRegStall);
    line("cacheMissStall", p.slotsCacheMissStall);
    line("execStall", p.slotsExecStall);
    line("verifyStall", p.slotsVerifyStall);
    std::printf("occupancy p50/p90/p99: rob %.1f/%.1f/%.1f  "
                "iq %.1f/%.1f/%.1f\n",
                p.robP50, p.robP90, p.robP99, p.iqP50, p.iqP90,
                p.iqP99);
    if (!p.topPcs.empty()) {
        std::printf("top static PCs by committed eliminations:\n");
        std::printf("  %-10s %10s %10s %10s %8s %8s\n", "pc",
                    "predicted", "elim", "mispred", "cover",
                    "falseElim");
        for (const auto &pc : p.topPcs) {
            std::printf("  %#-10llx %10llu %10llu %10llu %7.1f%% "
                        "%7.2f%%\n",
                        (unsigned long long)pc.pc,
                        (unsigned long long)pc.predicted,
                        (unsigned long long)pc.eliminated,
                        (unsigned long long)pc.mispredicts,
                        100.0 * pc.coverage(),
                        100.0 * pc.falseElimRate());
        }
    }
}

} // namespace

int
main(int argc, char **argv)
{
    Options opt;
    try {
        if (!parseArgs(argc, argv, opt))
            return 0;

        runner::SweepRunner::Options sweep_opts;
        sweep_opts.threads = opt.threads;
        runner::SweepRunner sweep(sweep_opts);

        prog::Program program = loadProgram(opt, sweep.cache());
        std::printf("program: %s (%zu static instructions)\n",
                    program.name().c_str(), program.numInsts());

        auto ref = emu::runProgram(program);
        std::printf("emulator: %llu dynamic instructions, %zu output "
                    "values\n",
                    (unsigned long long)ref.instCount,
                    ref.output.size());

        if (opt.deadness) {
            auto an = deadness::analyze(program, ref.trace);
            std::printf("deadness: %.2f%% dead (%llu first-level, %llu "
                        "transitive, %llu dead stores)\n",
                        100.0 * an.deadFraction(),
                        (unsigned long long)an.firstLevelDead,
                        (unsigned long long)an.transitiveDead,
                        (unsigned long long)an.deadStores);
        }

        core::CoreConfig cfg = makeConfig(opt);
        sim::RunOptions run_opts;
        run_opts.cosim = opt.cosim;
        run_opts.fastForwardInsts = opt.fastForward;

        std::vector<std::vector<bool>> oracle_labels;
        if (cfg.elim.enable && cfg.elim.oraclePredictor) {
            oracle_labels = sim::computeOracleLabels(
                program, ref.trace, cfg.elim.detector);
            run_opts.oracleLabels = &oracle_labels;
        }

        // The configured run and (with --compare) its baseline go
        // through the sweep runner as parallel jobs.
        sim::SimResult run_result, base_result;
        std::string run_label = opt.config +
                                (opt.elim ? "+elim" : "") +
                                (opt.oracle ? "+oracle" : "");
        sweep.add(run_label,
                  [&](runner::JobContext &) {
                      run_result =
                          sim::runOnCore(program, cfg, run_opts);
                      runner::JobResult r;
                      r.hasStats = true;
                      r.stats = run_result.stats;
                      return r;
                  });
        if (opt.compare) {
            core::CoreConfig base_cfg = cfg;
            base_cfg.elim.enable = false;
            sweep.add("baseline:" + opt.config,
                      [&, base_cfg](runner::JobContext &) {
                          base_result =
                              sim::runOnCore(program, base_cfg);
                          runner::JobResult r;
                          r.hasStats = true;
                          r.stats = base_result.stats;
                          return r;
                      });
        }
        auto report = sweep.run();
        for (const auto &r : report.results)
            fatal_if(!r.ok, "job '", r.label, "' failed: ", r.error);
        // A truncated run never reaches here via addCoreRun jobs, but
        // these are hand-rolled lambdas — enforce the same contract.
        fatal_if(run_result.cyclesExhausted,
                 "run hit the cycle limit without halting; "
                 "stats are truncated");
        fatal_if(opt.compare && base_result.cyclesExhausted,
                 "baseline hit the cycle limit without halting; "
                 "stats are truncated");

        std::printf("core(%s): %llu cycles, IPC %.3f",
                    run_label.c_str(),
                    (unsigned long long)run_result.stats.cycles,
                    run_result.stats.ipc);
        if (run_result.stats.fastForwarded != 0) {
            std::printf(", fast-forwarded %llu",
                        (unsigned long long)
                            run_result.stats.fastForwarded);
        }
        if (opt.elim) {
            std::printf(", eliminated %llu (%.2f%%)",
                        (unsigned long long)
                            run_result.stats.committedEliminated,
                        100.0 * run_result.stats.committedEliminated /
                            run_result.stats.committed);
        }
        std::printf("\n");
        std::printf("observable state matches emulator: %s\n",
                    sim::observablyEqual(run_result, ref) ? "yes"
                                                          : "NO");

        if (opt.compare) {
            std::printf("baseline: IPC %.3f -> speedup %+.2f%%\n",
                        base_result.stats.ipc,
                        100.0 * (run_result.stats.ipc /
                                     base_result.stats.ipc -
                                 1.0));
        }

        if (opt.profile && run_result.stats.profile.valid)
            printProfile(run_result.stats.profile,
                         run_result.stats.cycles);

        if (!opt.jsonPath.empty()) {
            std::ofstream os(opt.jsonPath);
            fatal_if(!os, "cannot write '", opt.jsonPath, "'");
            report.writeJson(os);
            std::printf("wrote %s\n", opt.jsonPath.c_str());
        }

        if (opt.stats) {
            core::Core core(program, cfg);
            if (cfg.elim.enable && cfg.elim.oraclePredictor)
                core.setOracleLabels(oracle_labels);
            core.run();
            fatal_if(!core.halted(),
                     "stats run hit the cycle limit without halting");
            std::printf("\n");
            std::ostringstream os;
            core.stats().dump(os);
            std::fputs(os.str().c_str(), stdout);
        }
        return 0;
    } catch (const FatalError &err) {
        return 1;
    }
}
