/**
 * @file
 * Interactive-ish predictor design-space exploration: evaluate a
 * dead-instruction predictor configuration you specify on the command
 * line against every workload, trace-driven (fast).
 *
 *   ./predictor_explorer [entries] [tagBits] [counterBits] [threshold] [futureDepth]
 *   e.g. ./predictor_explorer 1024 8 2 2 6
 */

#include <cstdio>
#include <cstdlib>

#include "emu/emulator.hh"
#include "mir/compiler.hh"
#include "predictor/trace_eval.hh"
#include "sim/simulator.hh"
#include "workloads/workloads.hh"

using namespace dde;

int
main(int argc, char **argv)
{
    predictor::TraceEvalConfig cfg;
    if (argc > 1)
        cfg.predictor.entries = std::atoi(argv[1]);
    if (argc > 2)
        cfg.predictor.tagBits = std::atoi(argv[2]);
    if (argc > 3)
        cfg.predictor.counterBits = std::atoi(argv[3]);
    if (argc > 4)
        cfg.predictor.threshold = std::atoi(argv[4]);
    if (argc > 5)
        cfg.predictor.futureDepth = std::atoi(argv[5]);

    std::printf("predictor: %u entries, %u-bit tags, %u-bit counters, "
                "threshold %u, future depth %u -> %.2f KB\n\n",
                cfg.predictor.entries, cfg.predictor.tagBits,
                cfg.predictor.counterBits, cfg.predictor.threshold,
                cfg.predictor.futureDepth,
                cfg.predictor.sizeInBits() / 8192.0);

    std::printf("%-10s %10s %10s %9s %9s %8s\n", "bench", "candidates",
                "dead", "coverage", "accuracy", "bpAcc");
    std::uint64_t tp = 0, fp = 0, dead = 0;
    for (const auto &w : workloads::allWorkloads()) {
        workloads::Params p;
        p.scale = 4;
        auto program = mir::compile(w.make(p),
                                    sim::referenceCompileOptions());
        auto run = emu::runProgram(program);
        auto r = predictor::evaluateOnTrace(program, run.trace, cfg);
        std::printf("%-10s %10llu %10llu %8.1f%% %8.1f%% %7.1f%%\n",
                    w.name.c_str(),
                    (unsigned long long)r.candidates,
                    (unsigned long long)r.labeledDead,
                    100.0 * r.coverage(), 100.0 * r.accuracy(),
                    100.0 * r.branchAccuracy());
        tp += r.truePositives;
        fp += r.falsePositives;
        dead += r.labeledDead;
    }
    std::printf("\naggregate: coverage %.1f%%, accuracy %.1f%%\n",
                dead ? 100.0 * tp / dead : 0.0,
                (tp + fp) ? 100.0 * tp / (tp + fp) : 100.0);
    return 0;
}
